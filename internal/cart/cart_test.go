package cart

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floats"
	"repro/internal/table"
)

// paperTable reproduces the 8-tuple table of Figure 1(a).
func paperTable(t testing.TB) *table.Table {
	t.Helper()
	schema := table.Schema{
		{Name: "age", Kind: table.Numeric},
		{Name: "salary", Kind: table.Numeric},
		{Name: "assets", Kind: table.Numeric},
		{Name: "credit", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	rows := [][]any{
		{30.0, 90000.0, 200000.0, "good"},
		{50.0, 110000.0, 250000.0, "good"},
		{70.0, 35000.0, 125000.0, "poor"},
		{75.0, 15000.0, 100000.0, "poor"},
		{25.0, 50000.0, 75000.0, "good"},
		{35.0, 76000.0, 75000.0, "good"},
		{45.0, 100000.0, 175000.0, "poor"},
		{55.0, 80000.0, 150000.0, "good"},
	}
	for _, r := range rows {
		b.MustAppendRow(r...)
	}
	return b.MustBuild()
}

const (
	colAge = iota
	colSalary
	colAssets
	colCredit
)

// modelValues counts the "values" stored by a model the way Example 1.1 of
// the paper counts them: tree nodes (labels + split values) plus outliers.
func modelValues(m *Model) int {
	return m.NumNodes() + len(m.Outliers)
}

// TestPaperExample11Classification mirrors Figure 1(b): predicting credit
// from salary reduces its storage from 8 values to at most 4 (the paper's
// count: 2 leaf labels + 1 split + 1 outlier).
func TestPaperExample11Classification(t *testing.T) {
	tb := paperTable(t)
	cm := NewCostModel(tb)
	m, _, err := Build(tb, colCredit, []int{colSalary}, 0, cm,
		Config{MinLeafRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeOutliers(tb, 0); err != nil {
		t.Fatal(err)
	}
	if got := modelValues(m); got > 4 {
		t.Errorf("credit model stores %d values, paper achieves 4\n%s", got, m)
	}
	// Reconstruction must be exact (tolerance 0 means all misclassified
	// rows are stored).
	rec := m.Reconstruct(tb, tb.Col(colCredit).Dict)
	for r := 0; r < tb.NumRows(); r++ {
		if rec.Codes[r] != tb.Col(colCredit).Codes[r] {
			t.Errorf("row %d: reconstructed credit %d != %d",
				r, rec.Codes[r], tb.Col(colCredit).Codes[r])
		}
	}
}

// TestPaperExample11Regression mirrors the assets regression tree: with
// tolerance 25,000 and predictors salary and age, assets storage drops
// from 8 values to at most 6 (paper: 3 labels + 2 splits + 1 outlier).
func TestPaperExample11Regression(t *testing.T) {
	tb := paperTable(t)
	cm := NewCostModel(tb)
	m, _, err := Build(tb, colAssets, []int{colAge, colSalary}, 25000, cm,
		Config{MinLeafRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeOutliers(tb, 25000); err != nil {
		t.Fatal(err)
	}
	if got := modelValues(m); got > 6 {
		t.Errorf("assets model stores %d values, paper achieves 6\n%s", got, m)
	}
	// Every reconstructed value is within tolerance.
	rec := m.Reconstruct(tb, nil)
	for r := 0; r < tb.NumRows(); r++ {
		if d := math.Abs(rec.Floats[r] - tb.Float(r, colAssets)); d > 25000 {
			t.Errorf("row %d: |err| = %g > 25000", r, d)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	tb := paperTable(t)
	cm := NewCostModel(tb)
	if _, _, err := Build(tb, colAssets, nil, 1, cm, Config{}); err == nil {
		t.Error("Build accepted empty candidate set")
	}
	if _, _, err := Build(tb, colAssets, []int{colAssets}, 1, cm, Config{}); err == nil {
		t.Error("Build accepted target as its own predictor")
	}
	if _, _, err := Build(tb, colAssets, []int{99}, 1, cm, Config{}); err == nil {
		t.Error("Build accepted out-of-range candidate")
	}
	empty, err := tb.SelectRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Build(empty, colAssets, []int{colAge}, 1, cm, Config{}); err == nil {
		t.Error("Build accepted empty sample")
	}
}

// correlatedTable has y strongly determined by x (plus noise below eps),
// a categorical c determined by x's sign region, and an unrelated column.
func correlatedTable(rng *rand.Rand, n int) *table.Table {
	schema := table.Schema{
		{Name: "x", Kind: table.Numeric},
		{Name: "y", Kind: table.Numeric},
		{Name: "c", Kind: table.Categorical},
		{Name: "junk", Kind: table.Numeric},
	}
	b := table.MustBuilder(schema)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		y := 3*x + rng.Float64()*2
		c := "low"
		if x > 50 {
			c = "high"
		}
		b.MustAppendRow(x, y, c, rng.Float64()*1000)
	}
	return b.MustBuild()
}

func TestRegressionErrorGuaranteeProperty(t *testing.T) {
	f := func(seed int64, tolByte uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := correlatedTable(rng, 300)
		tol := 1 + float64(tolByte)/8 // tolerance in [1, ~33]
		cm := NewCostModel(tb)
		m, _, err := Build(tb, 1, []int{0, 3}, tol, cm, Config{})
		if err != nil {
			return false
		}
		if err := m.ComputeOutliers(tb, tol); err != nil {
			return false
		}
		rec := m.Reconstruct(tb, nil)
		for r := 0; r < tb.NumRows(); r++ {
			if math.Abs(rec.Floats[r]-tb.Float(r, 1)) > tol+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestClassificationErrorGuaranteeProperty(t *testing.T) {
	f := func(seed int64, tolByte uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := correlatedTable(rng, 300)
		tol := float64(tolByte%50) / 100 // tolerance in [0, 0.49]
		cm := NewCostModel(tb)
		m, _, err := Build(tb, 2, []int{0, 3}, tol, cm, Config{})
		if err != nil {
			return false
		}
		if err := m.ComputeOutliers(tb, tol); err != nil {
			return false
		}
		rec := m.Reconstruct(tb, tb.Col(2).Dict)
		wrong := 0
		for r := 0; r < tb.NumRows(); r++ {
			if rec.Codes[r] != tb.Col(2).Codes[r] {
				wrong++
			}
		}
		return float64(wrong) <= tol*float64(tb.NumRows())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSampleBuildFullApply(t *testing.T) {
	// Build on a sample, apply to the full table: the guarantee must hold
	// on every full-table row because violations become outliers.
	rng := rand.New(rand.NewSource(4))
	full := correlatedTable(rng, 5000)
	sample := full.Sample(600, rng)
	cm := NewCostModel(full)
	tol := 5.0
	m, _, err := Build(sample, 1, []int{0}, tol, cm, Config{FullRows: full.NumRows()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeOutliers(full, tol); err != nil {
		t.Fatal(err)
	}
	rec := m.Reconstruct(full, nil)
	for r := 0; r < full.NumRows(); r++ {
		if math.Abs(rec.Floats[r]-full.Float(r, 1)) > tol {
			t.Fatalf("row %d violates tolerance after outlier pass", r)
		}
	}
	// The strong x→y correlation means few outliers.
	if frac := float64(len(m.Outliers)) / float64(full.NumRows()); frac > 0.1 {
		t.Errorf("outlier fraction %.2f unexpectedly high", frac)
	}
}

func TestUsedPredictorsFiltersJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tb := correlatedTable(rng, 500)
	cm := NewCostModel(tb)
	m, _, err := Build(tb, 1, []int{0, 3}, 2, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.UsedPredictors() {
		if p == 1 {
			t.Error("target appears as predictor")
		}
	}
	// x must be used; junk may appear occasionally but x is essential.
	foundX := false
	for _, p := range m.UsedPredictors() {
		if p == 0 {
			foundX = true
		}
	}
	if !foundX {
		t.Errorf("predictor x unused; tree:\n%s", m)
	}
}

func TestCategoricalPredictorSplit(t *testing.T) {
	// y is determined by a categorical attribute: the tree must use the
	// category split form and reach zero outliers.
	schema := table.Schema{
		{Name: "region", Kind: table.Categorical},
		{Name: "rate", Kind: table.Numeric},
	}
	b := table.MustBuilder(schema)
	rates := map[string]float64{"east": 10, "west": 50, "north": 90, "south": 130}
	rng := rand.New(rand.NewSource(3))
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 400; i++ {
		reg := regions[rng.Intn(4)]
		b.MustAppendRow(reg, rates[reg]+rng.Float64())
	}
	tb := b.MustBuild()
	cm := NewCostModel(tb)
	m, _, err := Build(tb, 1, []int{0}, 1, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeOutliers(tb, 1); err != nil {
		t.Fatal(err)
	}
	if len(m.Outliers) != 0 {
		t.Errorf("outliers = %d, want 0:\n%s", len(m.Outliers), m)
	}
	if m.NumLeaves() != 4 {
		t.Errorf("leaves = %d, want 4 (one per region)", m.NumLeaves())
	}
}

func TestLosslessToleranceZero(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tb := correlatedTable(rng, 300)
	cm := NewCostModel(tb)
	m, _, err := Build(tb, 1, []int{0}, 0, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeOutliers(tb, 0); err != nil {
		t.Fatal(err)
	}
	rec := m.Reconstruct(tb, nil)
	for r := 0; r < tb.NumRows(); r++ {
		if !floats.SameBits(rec.Floats[r], tb.Float(r, 1)) {
			t.Fatalf("lossless reconstruction differs at row %d", r)
		}
	}
}

func TestPruneModesAgreeOnGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tb := correlatedTable(rng, 600)
	cm := NewCostModel(tb)
	tol := 3.0
	for _, mode := range []PruneMode{PruneIntegrated, PruneAfter, PruneNone} {
		m, _, err := Build(tb, 1, []int{0, 3}, tol, cm, Config{Prune: mode})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ComputeOutliers(tb, tol); err != nil {
			t.Fatal(err)
		}
		rec := m.Reconstruct(tb, nil)
		for r := 0; r < tb.NumRows(); r++ {
			if math.Abs(rec.Floats[r]-tb.Float(r, 1)) > tol {
				t.Fatalf("mode %d: row %d violates tolerance", mode, r)
			}
		}
	}
}

func TestIntegratedPruneYieldsSmallerOrEqualTree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tb := correlatedTable(rng, 600)
	cm := NewCostModel(tb)
	mi, costI, err := Build(tb, 1, []int{0, 3}, 5, cm, Config{Prune: PruneIntegrated})
	if err != nil {
		t.Fatal(err)
	}
	mn, _, err := Build(tb, 1, []int{0, 3}, 5, cm, Config{Prune: PruneNone})
	if err != nil {
		t.Fatal(err)
	}
	if mi.NumNodes() > mn.NumNodes() {
		t.Errorf("integrated prune grew a bigger tree (%d > %d nodes)",
			mi.NumNodes(), mn.NumNodes())
	}
	ma, costA, err := Build(tb, 1, []int{0, 3}, 5, cm, Config{Prune: PruneAfter})
	if err != nil {
		t.Fatal(err)
	}
	// Both pruned variants optimize the same cost; allow small slack for
	// path-dependent growth differences.
	if costI > costA*1.25+64 {
		t.Errorf("integrated cost %.0f much worse than post-prune cost %.0f (trees: %d vs %d nodes)",
			costI, costA, mi.NumNodes(), ma.NumNodes())
	}
}

func TestModelEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tb := correlatedTable(rng, 400)
	cm := NewCostModel(tb)
	for _, target := range []int{1, 2} {
		tol := 2.0
		if tb.Attr(target).Kind == table.Categorical {
			tol = 0.05
		}
		m, _, err := Build(tb, target, []int{0, 3}, tol, cm, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ComputeOutliers(tb, tol); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeModel(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Target != m.Target || got.TargetKind != m.TargetKind {
			t.Fatalf("decoded header mismatch: %+v vs %+v", got, m)
		}
		if len(got.Outliers) != len(m.Outliers) {
			t.Fatalf("outlier count %d != %d", len(got.Outliers), len(m.Outliers))
		}
		// Predictions must agree row by row.
		for r := 0; r < tb.NumRows(); r++ {
			f1, c1 := m.PredictRow(tb, r)
			f2, c2 := got.PredictRow(tb, r)
			if !floats.SameBits(f1, f2) || c1 != c2 {
				t.Fatalf("row %d prediction differs after round trip", r)
			}
		}
	}
}

func TestDecodeModelRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tb := correlatedTable(rng, 200)
	cm := NewCostModel(tb)
	m, _, err := Build(tb, 1, []int{0}, 2, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := DecodeModel(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("DecodeModel accepted truncated stream")
	}
	if _, err := DecodeModel(bytes.NewReader(nil)); err == nil {
		t.Error("DecodeModel accepted empty stream")
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/3] = 0xFD // scramble a tag/structure byte
	// Either an error or a structurally valid (possibly different) model is
	// acceptable; a panic is not.
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("DecodeModel panicked on corrupted input: %v", r)
			}
		}()
		_, _ = DecodeModel(bytes.NewReader(bad))
	}()
}

// TestDecodeModelRejectsHostileWireValues hand-crafts model streams
// whose varints are structurally valid but semantically hostile: a row
// delta that would wrap negative when narrowed to int (sailing under
// the codec's `Row >= nrows` check into a negative slice index), and
// codes/attributes beyond any plausible range. Each must fail with an
// error, not wrap. These are the streams the taintalloc/sizeoverflow
// analyzers guard against regressing.
func TestDecodeModelRejectsHostileWireValues(t *testing.T) {
	// Prefix: target=0, kind=Numeric, root = numeric leaf 0.
	prefix := func() *bytes.Buffer {
		var buf bytes.Buffer
		buf.Write(binary.AppendUvarint(nil, 0)) // target attr
		buf.WriteByte(byte(table.Numeric))
		buf.WriteByte(0)           // tagLeafNum
		buf.Write(make([]byte, 4)) // leaf value 0.0
		return &buf
	}

	t.Run("huge row delta", func(t *testing.T) {
		buf := prefix()
		buf.Write(binary.AppendUvarint(nil, 1))     // one outlier
		buf.Write(binary.AppendUvarint(nil, 1<<62)) // delta wraps int
		buf.Write(make([]byte, 4))                  // outlier value
		m, err := DecodeModel(bytes.NewReader(buf.Bytes()))
		if err == nil {
			t.Fatalf("DecodeModel accepted a 2^62 row delta: %+v", m.Outliers)
		}
	})
	t.Run("huge target attribute", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write(binary.AppendUvarint(nil, 1<<40))
		buf.WriteByte(byte(table.Numeric))
		if _, err := DecodeModel(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("DecodeModel accepted a 2^40 target attribute")
		}
	})
	t.Run("huge split attribute", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write(binary.AppendUvarint(nil, 0))
		buf.WriteByte(byte(table.Numeric))
		buf.WriteByte(2)                            // tagInternalNum
		buf.Write(binary.AppendUvarint(nil, 1<<40)) // split attr
		if _, err := DecodeModel(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("DecodeModel accepted a 2^40 split attribute")
		}
	})
	t.Run("leaf code overflows int32", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write(binary.AppendUvarint(nil, 0))
		buf.WriteByte(byte(table.Categorical))
		buf.WriteByte(1)                            // tagLeafCat
		buf.Write(binary.AppendUvarint(nil, 1<<33)) // code > MaxInt32
		if _, err := DecodeModel(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("DecodeModel accepted a leaf code beyond int32")
		}
	})
}

func TestEncodeRejectsUnorderedOutliers(t *testing.T) {
	m := &Model{
		Target:     0,
		TargetKind: table.Numeric,
		Root:       &Node{Leaf: true, NumValue: 1},
		Outliers:   []Outlier{{Row: 5, Num: 1}, {Row: 2, Num: 2}},
	}
	if err := m.Encode(&bytes.Buffer{}); err == nil {
		t.Error("Encode accepted out-of-order outliers")
	}
}

func TestContainsCode(t *testing.T) {
	set := []int32{2, 5, 9}
	for _, c := range set {
		if !containsCode(set, c) {
			t.Errorf("containsCode missed %d", c)
		}
	}
	for _, c := range []int32{0, 3, 10} {
		if containsCode(set, c) {
			t.Errorf("containsCode false positive for %d", c)
		}
	}
	if containsCode(nil, 1) {
		t.Error("containsCode on empty set")
	}
}

func TestCostModel(t *testing.T) {
	tb := paperTable(t)
	cm := NewCostModel(tb)
	if !floats.SameBits(cm.ValueBits(colAge), 32) {
		t.Errorf("numeric ValueBits = %g, want 32", cm.ValueBits(colAge))
	}
	if !floats.SameBits(cm.ValueBits(colCredit), 1) {
		t.Errorf("2-value categorical ValueBits = %g, want 1", cm.ValueBits(colCredit))
	}
	if !floats.SameBits(cm.MaterCost(colAge), 8*32) {
		t.Errorf("MaterCost = %g, want 256", cm.MaterCost(colAge))
	}
	// Outlier = row id (3 bits for 8 rows) + value.
	if !floats.SameBits(cm.OutlierBits(colAge), 3+32) {
		t.Errorf("OutlierBits = %g, want 35", cm.OutlierBits(colAge))
	}
	m := &Model{Target: colAge, TargetKind: table.Numeric,
		Root: &Node{Leaf: true, NumValue: 1}}
	if got := cm.PredCost(m); !floats.SameBits(got, cm.LeafBits(colAge)) {
		t.Errorf("PredCost(single leaf) = %g, want %g", got, cm.LeafBits(colAge))
	}
}

func TestDepthAndCounts(t *testing.T) {
	leaf := &Node{Leaf: true}
	m := &Model{Root: leaf, TargetKind: table.Numeric}
	if m.Depth() != 1 || m.NumNodes() != 1 || m.NumLeaves() != 1 {
		t.Error("single-leaf counts wrong")
	}
	m2 := &Model{TargetKind: table.Numeric, Root: &Node{
		SplitAttr: 0, Left: &Node{Leaf: true}, Right: &Node{
			SplitAttr: 1, Left: &Node{Leaf: true}, Right: &Node{Leaf: true}},
	}}
	if m2.Depth() != 3 || m2.NumNodes() != 5 || m2.NumLeaves() != 3 {
		t.Errorf("depth=%d nodes=%d leaves=%d, want 3/5/3",
			m2.Depth(), m2.NumNodes(), m2.NumLeaves())
	}
}
