package cart

import (
	"context"
	"math"
	"sort"

	"repro/internal/floats"
	"repro/internal/table"
)

// classification tree construction (paper §3.3, categorical targets,
// PUBLIC-style integration of building and cost-based pruning).
//
// A leaf predicts its majority class; misclassified rows beyond the
// target's probability budget become stored outliers. The global budget
// (tol · N rows may stay wrong unstored) is distributed proportionally
// during construction: a leaf with k rows is granted ⌊tol·k⌋ free errors,
// so per-leaf cost estimates sum to a consistent global estimate.
// Split selection minimizes Gini impurity.

// leafStatsClassification returns the majority code, the misclassified
// count, and the count of misclassifications that exceed the leaf's
// pro-rata tolerance budget (the ones that would need outlier storage).
func (b *treeBuilder) leafStatsClassification(rows []int) (majority int32, mis, chargeable int) {
	counts := map[int32]int{}
	for _, r := range rows {
		counts[b.t.Code(r, b.target)]++
	}
	bestCode, bestCount := int32(0), -1
	for code, c := range counts {
		if c > bestCount || (c == bestCount && code < bestCode) {
			bestCode, bestCount = code, c
		}
	}
	if bestCount < 0 {
		return 0, 0, 0
	}
	mis = len(rows) - bestCount
	allowance := int(b.tol * float64(len(rows)))
	chargeable = mis - allowance
	if chargeable < 0 {
		chargeable = 0
	}
	return bestCode, mis, chargeable
}

// buildClassification grows (and under PruneIntegrated, prunes) a subtree,
// returning it with its estimated storage cost.
func (b *treeBuilder) buildClassification(ctx context.Context, rows []int, depth int) (*Node, float64) {
	if b.cancelled(ctx) {
		return &Node{Leaf: true}, 0
	}
	majority, mis, chargeable := b.leafStatsClassification(rows)
	leaf := &Node{Leaf: true, CatValue: majority}
	leafCost := b.cm.LeafBits(b.target) + b.outlierCost(chargeable)

	if mis == 0 || chargeable == 0 || depth >= b.cfg.MaxDepth || len(rows) < 2*b.cfg.MinLeafRows {
		return leaf, leafCost
	}
	if b.cfg.Prune == PruneIntegrated && leafCost <= b.leafFloor() {
		return leaf, leafCost
	}

	split, ok := b.bestSplitGini(rows)
	if !ok {
		return leaf, leafCost
	}
	leftRows, rightRows := b.partition(rows, split)
	if len(leftRows) < b.cfg.MinLeafRows || len(rightRows) < b.cfg.MinLeafRows {
		return leaf, leafCost
	}
	leftNode, leftCost := b.buildClassification(ctx, leftRows, depth+1)
	rightNode, rightCost := b.buildClassification(ctx, rightRows, depth+1)
	splitCost := b.cm.InternalBits(split.attr) + leftCost + rightCost

	if b.cfg.Prune == PruneIntegrated && leafCost <= splitCost {
		return leaf, leafCost
	}
	n := &Node{
		SplitAttr:  split.attr,
		SplitValue: split.value,
		SplitLeft:  split.leftCodes,
		SplitIsCat: split.isCat,
		Left:       leftNode,
		Right:      rightNode,
	}
	return n, splitCost
}

// pruneClassification is the post-hoc pass for PruneAfter mode.
func (b *treeBuilder) pruneClassification(ctx context.Context, n *Node, rows []int) (*Node, float64) {
	if b.cancelled(ctx) {
		return n, 0
	}
	majority, _, chargeable := b.leafStatsClassification(rows)
	leafCost := b.cm.LeafBits(b.target) + b.outlierCost(chargeable)
	if n.Leaf {
		return n, leafCost
	}
	leftRows, rightRows := b.routeRows(n, rows)
	left, leftCost := b.pruneClassification(ctx, n.Left, leftRows)
	right, rightCost := b.pruneClassification(ctx, n.Right, rightRows)
	splitCost := b.cm.InternalBits(n.SplitAttr) + leftCost + rightCost
	if leafCost <= splitCost {
		return &Node{Leaf: true, CatValue: majority}, leafCost
	}
	n.Left, n.Right = left, right
	return n, splitCost
}

// bestSplitGini evaluates all candidate attributes under the Gini
// impurity criterion.
func (b *treeBuilder) bestSplitGini(rows []int) (candidateSplit, bool) {
	classes := b.classIndex(rows)
	y := make([]int, len(rows))
	for i, r := range rows {
		y[i] = classes[b.t.Code(r, b.target)]
	}
	nc := len(classes)
	best := candidateSplit{score: math.Inf(1)}
	found := false
	for _, attr := range b.cands {
		var s candidateSplit
		var ok bool
		if b.t.Attr(attr).Kind == table.Numeric {
			s, ok = b.numericSplitGini(rows, y, nc, attr)
		} else {
			s, ok = b.categoricalSplitGini(rows, y, nc, attr)
		}
		if ok && s.score < best.score {
			best = s
			found = true
		}
	}
	return best, found
}

// classIndex maps the target codes present in rows to dense indices.
func (b *treeBuilder) classIndex(rows []int) map[int32]int {
	idx := make(map[int32]int, b.t.Col(b.target).DomainSize())
	for _, r := range rows {
		c := b.t.Code(r, b.target)
		if _, ok := idx[c]; !ok {
			idx[c] = len(idx)
		}
	}
	return idx
}

func giniFromCounts(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

// numericSplitGini scans thresholds of a numeric predictor keeping running
// class counts.
func (b *treeBuilder) numericSplitGini(rows []int, y []int, nc, attr int) (candidateSplit, bool) {
	n := len(rows)
	type pair struct {
		x float64
		y int
	}
	ps := make([]pair, n)
	for i, r := range rows {
		ps[i] = pair{b.t.Float(r, attr), y[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	if floats.SameBits(ps[0].x, ps[n-1].x) {
		return candidateSplit{}, false
	}
	totals := make([]int, nc)
	for _, p := range ps {
		totals[p.y]++
	}
	leftCounts := make([]int, nc)
	rightCounts := append([]int(nil), totals...)
	best := candidateSplit{attr: attr, score: math.Inf(1)}
	found := false
	for k := 1; k < n; k++ {
		leftCounts[ps[k-1].y]++
		rightCounts[ps[k-1].y]--
		if floats.SameBits(ps[k-1].x, ps[k].x) {
			continue
		}
		if k < b.cfg.MinLeafRows || n-k < b.cfg.MinLeafRows {
			continue
		}
		fl, fr := float64(k), float64(n-k)
		score := (fl*giniFromCounts(leftCounts, k) + fr*giniFromCounts(rightCounts, n-k)) / float64(n)
		if score < best.score {
			best.score = score
			// float32 wire format; see numericSplitSSE.
			best.value = floats.F32((ps[k-1].x + ps[k].x) / 2)
			found = true
		}
	}
	return best, found
}

// categoricalSplitGini orders predictor codes by the proportion of the
// parent's majority class and scans prefix partitions (exact for two
// classes, a strong heuristic for more).
func (b *treeBuilder) categoricalSplitGini(rows []int, y []int, nc, attr int) (candidateSplit, bool) {
	type group struct {
		code   int32
		counts []int
		n      int
	}
	groups := make(map[int32]*group, b.t.Col(attr).DomainSize())
	for i, r := range rows {
		c := b.t.Code(r, attr)
		g := groups[c]
		if g == nil {
			g = &group{code: c, counts: make([]int, nc)}
			groups[c] = g
		}
		g.counts[y[i]]++
		g.n++
	}
	if len(groups) < 2 {
		return candidateSplit{}, false
	}
	totals := make([]int, nc)
	n := 0
	for _, g := range groups {
		for cls, c := range g.counts {
			totals[cls] += c
		}
		n += g.n
	}
	majorityClass := 0
	for cls := 1; cls < nc; cls++ {
		if totals[cls] > totals[majorityClass] {
			majorityClass = cls
		}
	}
	gs := make([]*group, 0, len(groups))
	for _, g := range groups {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool {
		pi := float64(gs[i].counts[majorityClass]) / float64(gs[i].n)
		pj := float64(gs[j].counts[majorityClass]) / float64(gs[j].n)
		if !floats.SameBits(pi, pj) {
			return pi < pj
		}
		return gs[i].code < gs[j].code
	})
	best := candidateSplit{attr: attr, isCat: true, score: math.Inf(1)}
	found := false
	leftCounts := make([]int, nc)
	rightCounts := append([]int(nil), totals...)
	cnt := 0
	for k := 0; k < len(gs)-1; k++ {
		for cls, c := range gs[k].counts {
			leftCounts[cls] += c
			rightCounts[cls] -= c
		}
		cnt += gs[k].n
		if cnt < b.cfg.MinLeafRows || n-cnt < b.cfg.MinLeafRows {
			continue
		}
		fl, fr := float64(cnt), float64(n-cnt)
		score := (fl*giniFromCounts(leftCounts, cnt) + fr*giniFromCounts(rightCounts, n-cnt)) / float64(n)
		if score < best.score {
			best.score = score
			left := make([]int32, 0, k+1)
			for i := 0; i <= k; i++ {
				left = append(left, gs[i].code)
			}
			sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })
			best.leftCodes = left
			found = true
		}
	}
	return best, found
}
