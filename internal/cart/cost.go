package cart

import (
	"math"

	"repro/internal/table"
)

// CostModel converts tree structure and outlier counts into storage bits,
// implementing the cost accounting of DESIGN.md §5. All selector decisions
// (MaterCost vs PredCost, paper §2.2) are denominated in these bits.
type CostModel struct {
	attrBits  float64   // bits to name a split attribute
	rowBits   float64   // bits to name an outlier row
	valueBits []float64 // per-attribute value width
	materBits []float64 // per-attribute per-value materialization bits
	rows      int
}

// NewCostModel derives a cost model from a table: attribute ids cost
// log2(#attrs) bits, row ids log2(#rows) bits, numeric values 32 bits and
// categorical values ceil(log2 |dom|) bits (min 1).
func NewCostModel(t *table.Table) *CostModel {
	cm := &CostModel{
		attrBits:  ceilLog2(t.NumCols()),
		rowBits:   ceilLog2(t.NumRows()),
		valueBits: make([]float64, t.NumCols()),
		rows:      t.NumRows(),
	}
	for i := 0; i < t.NumCols(); i++ {
		col := t.Col(i)
		if col.Kind == table.Numeric {
			cm.valueBits[i] = 32
		} else {
			cm.valueBits[i] = ceilLog2(len(col.Dict))
		}
	}
	cm.materBits = append([]float64(nil), cm.valueBits...)
	return cm
}

// SetMaterBits overrides the per-value materialization cost of attribute i
// (bits per value). SPARTAN estimates these by entropy-coding sample
// columns, so the selector's MaterCost-vs-PredCost trade-off reflects what
// the T' encoder will actually achieve rather than raw value widths.
func (cm *CostModel) SetMaterBits(i int, bitsPerValue float64) {
	cm.materBits[i] = bitsPerValue
}

func ceilLog2(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(n)))
}

// NumRows returns the row count of the table the model was derived from.
func (cm *CostModel) NumRows() int { return cm.rows }

// ValueBits returns the storage width of one value of attribute i.
func (cm *CostModel) ValueBits(i int) float64 { return cm.valueBits[i] }

// MaterCost returns the bits needed to materialize attribute i in full
// (paper: MaterCost(Xᵢ)), using the (possibly entropy-estimated) per-value
// materialization width.
func (cm *CostModel) MaterCost(i int) float64 {
	return float64(cm.rows) * cm.materBits[i]
}

// LeafBits returns the bits for one leaf of a tree predicting target.
func (cm *CostModel) LeafBits(target int) float64 {
	// 1 bit leaf/internal marker + the label value.
	return 1 + cm.valueBits[target]
}

// InternalBits returns the bits for one internal node splitting on attr.
func (cm *CostModel) InternalBits(attr int) float64 {
	// 1 bit marker + attribute id + split payload (threshold or code set;
	// we charge one attribute-value width, matching the paper's "split
	// value at internal node" accounting in Example 1.1).
	return 1 + cm.attrBits + cm.valueBits[attr]
}

// OutlierBits returns the bits to store one outlier of the target
// attribute: a row id plus the exact value.
func (cm *CostModel) OutlierBits(target int) float64 {
	return cm.rowBits + cm.valueBits[target]
}

// ModelTreeBits returns the serialized size of a model's tree.
func (cm *CostModel) ModelTreeBits(m *Model) float64 {
	var walk func(n *Node) float64
	walk = func(n *Node) float64 {
		if n == nil {
			return 0
		}
		if n.Leaf {
			return cm.LeafBits(m.Target)
		}
		return cm.InternalBits(n.SplitAttr) + walk(n.Left) + walk(n.Right)
	}
	return walk(m.Root)
}

// PredCost returns the full prediction cost of a model: tree bits plus
// outlier storage (paper: PredCost(𝒳ᵢ→Xᵢ), excluding predictor
// materialization).
func (cm *CostModel) PredCost(m *Model) float64 {
	return cm.ModelTreeBits(m) + float64(len(m.Outliers))*cm.OutlierBits(m.Target)
}
