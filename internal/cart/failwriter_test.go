package cart

import (
	"errors"
	"math/rand"
	"testing"
)

// failAfter errors once n bytes have been written, covering the encoder's
// error-propagation branches.
type failAfter struct {
	n       int
	written int
}

var errBoom = errors.New("boom")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		allowed := f.n - f.written
		if allowed < 0 {
			allowed = 0
		}
		f.written += allowed
		return allowed, errBoom
	}
	f.written += len(p)
	return len(p), nil
}

func TestEncodePropagatesWriteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tb := correlatedTable(rng, 300)
	cm := NewCostModel(tb)
	for _, target := range []int{1, 2} {
		tol := 2.0
		if tb.Attr(target).Kind != 0 { // categorical
			tol = 0
		}
		m, _, err := Build(tb, target, []int{0}, tol, cm, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ComputeOutliers(tb, tol); err != nil {
			t.Fatal(err)
		}
		// Learn the stream size, then sweep failure points inside it;
		// every write must surface the error.
		var probe failAfter
		probe.n = 1 << 30
		if err := m.Encode(&probe); err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < probe.written; cut += 1 + probe.written/8 {
			if err := m.Encode(&failAfter{n: cut}); err == nil {
				t.Errorf("target %d: Encode succeeded with writer failing at %d/%d bytes",
					target, cut, probe.written)
			}
		}
	}
}
