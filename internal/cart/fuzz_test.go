package cart

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecodeModel asserts the model decoder never panics on arbitrary
// input.
func FuzzDecodeModel(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	tb := correlatedTable(rng, 100)
	cm := NewCostModel(tb)
	m, _, err := Build(tb, 1, []int{0}, 2, cm, Config{})
	if err != nil {
		f.Fatal(err)
	}
	if err := m.ComputeOutliers(tb, 2); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte(nil), valid...)
	mutated[0] ^= 0x01
	f.Add(mutated)
	// Deep nesting attack: a long run of internal-node tags.
	deep := bytes.Repeat([]byte{0x00, 0x00, tagInternalNum, 0x01}, 2000)
	f.Add(deep)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeModel(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Error("DecodeModel returned nil model without error")
		}
	})
}
