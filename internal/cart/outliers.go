package cart

import (
	"context"
	"fmt"

	"repro/internal/table"
)

// scanBatchRows is how many rows an outlier scan processes between
// context checks: large enough that the check is amortized to nothing,
// small enough that cancellation lands within a fraction of a
// millisecond of work.
const scanBatchRows = 4096

// ComputeOutliers runs the model over the full table and records every row
// whose prediction violates the target's tolerance.
//
// For numeric targets the bound is per-row, so every violating row is
// stored exactly. For categorical targets the bound is a probability: up
// to ⌊tol·N⌋ misclassified rows may remain unstored; the rest are stored
// as outliers. (All categorical outliers cost the same, so which ones stay
// unstored is arbitrary; the earliest rows are kept unstored for
// determinism.)
//
// The table passed here must use the same schema (and, for categorical
// columns, the same dictionaries) as the sample the model was built on.
func (m *Model) ComputeOutliers(full *table.Table, tol float64) error {
	return m.ComputeOutliersBudget(full, tol, nil)
}

// ComputeOutliersBudget is ComputeOutliers with optional per-class
// mismatch budgets for categorical targets (paper §2.1's per-class
// extension): for each true class c, at most perClass[c]·count(c) rows
// may stay misclassified unstored; classes absent from the map fall back
// to tol. A nil map reproduces the global-probability semantics.
func (m *Model) ComputeOutliersBudget(full *table.Table, tol float64, perClass map[int32]float64) error {
	return m.ComputeOutliersBudgetContext(context.Background(), full, tol, perClass)
}

// ComputeOutliersBudgetContext is ComputeOutliersBudget with
// cancellation: the full-table scan checks ctx between row batches
// (scanBatchRows rows each) and returns the wrapped context error,
// leaving the model's outlier list in an unspecified but safe state.
func (m *Model) ComputeOutliersBudgetContext(ctx context.Context, full *table.Table, tol float64, perClass map[int32]float64) error {
	m.Outliers = m.Outliers[:0]
	switch m.TargetKind {
	case table.Numeric:
		col := full.Col(m.Target)
		if col.Kind != table.Numeric {
			return fmt.Errorf("cart: model target %d is numeric, table column is not", m.Target)
		}
		for base := 0; base < full.NumRows(); base += scanBatchRows {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("cart: outlier scan: %w", err)
			}
			for r, end := base, minRow(base+scanBatchRows, full.NumRows()); r < end; r++ {
				pred, _ := m.PredictRow(full, r)
				actual := col.Floats[r]
				if diff := actual - pred; diff > tol || diff < -tol {
					m.Outliers = append(m.Outliers, Outlier{Row: r, Num: actual})
				}
			}
		}
	case table.Categorical:
		col := full.Col(m.Target)
		if col.Kind != table.Categorical {
			return fmt.Errorf("cart: model target %d is categorical, table column is not", m.Target)
		}
		var wrong []Outlier
		for base := 0; base < full.NumRows(); base += scanBatchRows {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("cart: outlier scan: %w", err)
			}
			for r, end := base, minRow(base+scanBatchRows, full.NumRows()); r < end; r++ {
				_, pred := m.PredictRow(full, r)
				if actual := col.Codes[r]; actual != pred {
					//spartanvet:ignore hotalloc misprediction count is unknowable before predicting; counting first would double the PredictRow cost
					wrong = append(wrong, Outlier{Row: r, Code: actual})
				}
			}
		}
		if perClass == nil {
			allowance := int(tol * float64(full.NumRows()))
			if allowance > len(wrong) {
				allowance = len(wrong)
			}
			m.Outliers = append(m.Outliers, wrong[allowance:]...)
			return nil
		}
		// Per-class budgets: allowance_c = ⌊e_c · |rows with class c|⌋.
		classCount := map[int32]int{}
		for _, c := range col.Codes {
			classCount[c]++
		}
		allowanceLeft := make(map[int32]int, len(classCount))
		for c, n := range classCount {
			e, ok := perClass[c]
			if !ok {
				e = tol
			}
			allowanceLeft[c] = int(e * float64(n))
		}
		for _, o := range wrong {
			if allowanceLeft[o.Code] > 0 {
				allowanceLeft[o.Code]--
				continue
			}
			m.Outliers = append(m.Outliers, o)
		}
	}
	return nil
}

func minRow(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CountViolations returns how many rows of t the model would store as
// outliers under the given tolerance, without materializing the outlier
// list. For categorical targets the probability allowance is already
// subtracted. Selectors use this on a holdout sample for honest
// prediction-cost estimates.
func (m *Model) CountViolations(t *table.Table, tol float64) int {
	switch m.TargetKind {
	case table.Numeric:
		col := t.Col(m.Target)
		n := 0
		for r := 0; r < t.NumRows(); r++ {
			pred, _ := m.PredictRow(t, r)
			if diff := col.Floats[r] - pred; diff > tol || diff < -tol {
				n++
			}
		}
		return n
	default:
		col := t.Col(m.Target)
		wrong := 0
		for r := 0; r < t.NumRows(); r++ {
			_, pred := m.PredictRow(t, r)
			if col.Codes[r] != pred {
				wrong++
			}
		}
		wrong -= int(tol * float64(t.NumRows()))
		if wrong < 0 {
			wrong = 0
		}
		return wrong
	}
}

// Reconstruct materializes the predicted column for the full table:
// model predictions with outliers substituted. The returned column has the
// same kind and (for categorical targets) shares the target dictionary of
// the reference table.
func (m *Model) Reconstruct(predictorData *table.Table, dict []string) *table.Column {
	n := predictorData.NumRows()
	out := &table.Column{Kind: m.TargetKind, Dict: dict}
	if m.TargetKind == table.Numeric {
		out.Floats = make([]float64, n)
		for r := 0; r < n; r++ {
			out.Floats[r], _ = m.PredictRow(predictorData, r)
		}
		for _, o := range m.Outliers {
			out.Floats[o.Row] = o.Num
		}
		return out
	}
	out.Codes = make([]int32, n)
	for r := 0; r < n; r++ {
		_, out.Codes[r] = m.PredictRow(predictorData, r)
	}
	for _, o := range m.Outliers {
		out.Codes[o.Row] = o.Code
	}
	return out
}
