package cart

import (
	"context"
	"math"
	"sort"

	"repro/internal/floats"
	"repro/internal/table"
)

// regression tree construction (paper §3.3, numeric targets).
//
// A leaf predicting value p satisfies the tolerance for every row whose
// target value lies in [p-tol, p+tol]; the remaining rows are outliers. The
// best constant for a leaf is therefore the center of the length-2·tol
// window covering the most rows (computed by a sliding window over the
// sorted leaf values). Split selection minimizes the sum of squared errors
// (the classic CART criterion) which is an efficient proxy for narrowing
// leaf windows; storage-cost pruning then decides whether a split is kept.

// leafStatsRegression returns the best constant prediction, the number of
// rows it fails to cover, and whether the leaf is "acceptable" (no
// outliers), for the given rows.
func (b *treeBuilder) leafStatsRegression(rows []int) (pred float64, outliers int) {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = b.t.Float(r, b.target)
	}
	sort.Float64s(vals)
	if len(vals) == 0 {
		return 0, 0
	}
	// Sliding window of width 2·tol maximizing coverage.
	bestLo, bestCount := 0, 1
	lo := 0
	for hi := 0; hi < len(vals); hi++ {
		for vals[hi]-vals[lo] > 2*b.tol {
			lo++
		}
		if hi-lo+1 > bestCount {
			bestCount = hi - lo + 1
			bestLo = lo
		}
	}
	hiIdx := bestLo + bestCount - 1
	// Predictions are rounded through float32 (their wire format) here, so
	// the outlier scan sees exactly the prediction the decompressor will
	// compute. Rows the rounding pushes past the bound simply become
	// outliers.
	pred = floats.F32((vals[bestLo] + vals[hiIdx]) / 2)
	return pred, len(vals) - bestCount
}

// buildRegression grows (and under PruneIntegrated, prunes) a subtree for
// the given sample rows, returning the subtree and its estimated storage
// cost in bits.
func (b *treeBuilder) buildRegression(ctx context.Context, rows []int, depth int) (*Node, float64) {
	if b.cancelled(ctx) {
		return &Node{Leaf: true}, 0
	}
	pred, outliers := b.leafStatsRegression(rows)
	leaf := &Node{Leaf: true, NumValue: pred}
	leafCost := b.cm.LeafBits(b.target) + b.outlierCost(outliers)

	// Stop conditions: acceptable leaf (paper's optimization 2), depth or
	// size bounds.
	if outliers == 0 || depth >= b.cfg.MaxDepth || len(rows) < 2*b.cfg.MinLeafRows {
		return leaf, leafCost
	}
	// Integrated pruning: if no expansion can beat the leaf, stop now.
	if b.cfg.Prune == PruneIntegrated && leafCost <= b.leafFloor() {
		return leaf, leafCost
	}

	split, ok := b.bestSplitSSE(rows, b.targetFloats(rows))
	if !ok {
		return leaf, leafCost
	}
	leftRows, rightRows := b.partition(rows, split)
	if len(leftRows) < b.cfg.MinLeafRows || len(rightRows) < b.cfg.MinLeafRows {
		return leaf, leafCost
	}
	leftNode, leftCost := b.buildRegression(ctx, leftRows, depth+1)
	rightNode, rightCost := b.buildRegression(ctx, rightRows, depth+1)
	splitCost := b.cm.InternalBits(split.attr) + leftCost + rightCost

	if b.cfg.Prune == PruneIntegrated && leafCost <= splitCost {
		return leaf, leafCost
	}
	n := &Node{
		SplitAttr:  split.attr,
		SplitValue: split.value,
		SplitLeft:  split.leftCodes,
		SplitIsCat: split.isCat,
		Left:       leftNode,
		Right:      rightNode,
	}
	return n, splitCost
}

// pruneRegression is the post-hoc pruning pass for PruneAfter mode:
// bottom-up, replace any subtree whose leaf-equivalent costs no more.
func (b *treeBuilder) pruneRegression(ctx context.Context, n *Node, rows []int) (*Node, float64) {
	if b.cancelled(ctx) {
		return n, 0
	}
	pred, outliers := b.leafStatsRegression(rows)
	leafCost := b.cm.LeafBits(b.target) + b.outlierCost(outliers)
	if n.Leaf {
		return n, leafCost
	}
	leftRows, rightRows := b.routeRows(n, rows)
	left, leftCost := b.pruneRegression(ctx, n.Left, leftRows)
	right, rightCost := b.pruneRegression(ctx, n.Right, rightRows)
	splitCost := b.cm.InternalBits(n.SplitAttr) + leftCost + rightCost
	if leafCost <= splitCost {
		return &Node{Leaf: true, NumValue: pred}, leafCost
	}
	n.Left, n.Right = left, right
	return n, splitCost
}

func (b *treeBuilder) targetFloats(rows []int) []float64 {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = b.t.Float(r, b.target)
	}
	return vals
}

// candidateSplit describes one evaluated split.
type candidateSplit struct {
	attr      int
	isCat     bool
	value     float64 // numeric threshold
	leftCodes []int32 // categorical left set
	score     float64 // lower is better (total child SSE / Gini)
}

// bestSplitSSE evaluates every candidate attribute and returns the split
// minimizing total child SSE of the target values. ok is false when no
// attribute admits a valid split (all predictor values constant).
func (b *treeBuilder) bestSplitSSE(rows []int, y []float64) (candidateSplit, bool) {
	best := candidateSplit{score: math.Inf(1)}
	found := false
	for _, attr := range b.cands {
		var s candidateSplit
		var ok bool
		if b.t.Attr(attr).Kind == table.Numeric {
			s, ok = b.numericSplitSSE(rows, y, attr)
		} else {
			s, ok = b.categoricalSplitSSE(rows, y, attr)
		}
		if ok && (s.score < best.score ||
			(floats.SameBits(s.score, best.score) && found && s.attr < best.attr)) {
			best = s
			found = true
		}
	}
	return best, found
}

// numericSplitSSE scans thresholds of a numeric predictor via sorted order
// and prefix sums, in O(n log n).
func (b *treeBuilder) numericSplitSSE(rows []int, y []float64, attr int) (candidateSplit, bool) {
	n := len(rows)
	type pair struct {
		x, y float64
	}
	ps := make([]pair, n)
	for i, r := range rows {
		ps[i] = pair{b.t.Float(r, attr), y[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	if floats.SameBits(ps[0].x, ps[n-1].x) {
		return candidateSplit{}, false
	}
	sum, sumsq := 0.0, 0.0
	total, totalsq := 0.0, 0.0
	for _, p := range ps {
		total += p.y
		totalsq += p.y * p.y
	}
	best := candidateSplit{attr: attr, score: math.Inf(1)}
	found := false
	for k := 1; k < n; k++ {
		sum += ps[k-1].y
		sumsq += ps[k-1].y * ps[k-1].y
		if floats.SameBits(ps[k-1].x, ps[k].x) {
			continue // not a realizable threshold
		}
		if k < b.cfg.MinLeafRows || n-k < b.cfg.MinLeafRows {
			continue
		}
		fl, fr := float64(k), float64(n-k)
		sseL := sumsq - sum*sum/fl
		sseR := (totalsq - sumsq) - (total-sum)*(total-sum)/fr
		if score := sseL + sseR; score < best.score {
			best.score = score
			// Thresholds live as float32 on the wire; rounding here keeps
			// build-time and decode-time routing identical.
			best.value = floats.F32((ps[k-1].x + ps[k].x) / 2)
			found = true
		}
	}
	return best, found
}

// categoricalSplitSSE orders the predictor's codes by mean target value and
// scans prefix partitions — the classic optimal-for-SSE ordering trick.
func (b *treeBuilder) categoricalSplitSSE(rows []int, y []float64, attr int) (candidateSplit, bool) {
	type group struct {
		code  int32
		sum   float64
		sumsq float64
		n     int
	}
	groups := make(map[int32]*group, b.t.Col(attr).DomainSize())
	for i, r := range rows {
		c := b.t.Code(r, attr)
		g := groups[c]
		if g == nil {
			g = &group{code: c}
			groups[c] = g
		}
		g.sum += y[i]
		g.sumsq += y[i] * y[i]
		g.n++
	}
	if len(groups) < 2 {
		return candidateSplit{}, false
	}
	gs := make([]*group, 0, len(groups))
	for _, g := range groups {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool {
		mi, mj := gs[i].sum/float64(gs[i].n), gs[j].sum/float64(gs[j].n)
		if !floats.SameBits(mi, mj) {
			return mi < mj
		}
		return gs[i].code < gs[j].code
	})
	total, totalsq, n := 0.0, 0.0, 0
	for _, g := range gs {
		total += g.sum
		totalsq += g.sumsq
		n += g.n
	}
	best := candidateSplit{attr: attr, isCat: true, score: math.Inf(1)}
	found := false
	sum, sumsq, cnt := 0.0, 0.0, 0
	for k := 0; k < len(gs)-1; k++ {
		sum += gs[k].sum
		sumsq += gs[k].sumsq
		cnt += gs[k].n
		if cnt < b.cfg.MinLeafRows || n-cnt < b.cfg.MinLeafRows {
			continue
		}
		fl, fr := float64(cnt), float64(n-cnt)
		sseL := sumsq - sum*sum/fl
		sseR := (totalsq - sumsq) - (total-sum)*(total-sum)/fr
		if score := sseL + sseR; score < best.score {
			best.score = score
			left := make([]int32, 0, k+1)
			for i := 0; i <= k; i++ {
				left = append(left, gs[i].code)
			}
			sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })
			best.leftCodes = left
			found = true
		}
	}
	return best, found
}

// partition splits rows according to the candidate split.
func (b *treeBuilder) partition(rows []int, s candidateSplit) (left, right []int) {
	for _, r := range rows {
		goLeft := false
		if s.isCat {
			goLeft = containsCode(s.leftCodes, b.t.Code(r, s.attr))
		} else {
			goLeft = b.t.Float(r, s.attr) <= s.value
		}
		if goLeft {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}

// routeRows splits rows according to an existing node's split.
func (b *treeBuilder) routeRows(n *Node, rows []int) (left, right []int) {
	for _, r := range rows {
		if n.takeLeft(b.t, r) {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}
