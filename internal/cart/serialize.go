package cart

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/table"
)

// Model wire format (used inside the compressed-table codec):
//
//	model   := target(uvarint) kind(byte) tree outliers
//	tree    := leafNum | leafCat | internalNum | internalCat
//	leafNum := 0x00 float32
//	leafCat := 0x01 uvarint(code)
//	internalNum := 0x02 uvarint(attr) float32(threshold) tree tree
//	internalCat := 0x03 uvarint(attr) uvarint(k) k*uvarint(code) tree tree
//	outliers := uvarint(count) count*(uvarint(rowDelta) value)
//
// Row ids are delta-encoded (outliers are generated in increasing row
// order), values are float32 for numeric targets (the cell wire format;
// the builder rounds predictions and thresholds through float32, so this
// is exact) and uvarint codes for categorical targets.

const (
	tagLeafNum byte = iota
	tagLeafCat
	tagInternalNum
	tagInternalCat
)

// Encode writes the model to w.
func (m *Model) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := putUvarint(bw, uint64(m.Target)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(m.TargetKind)); err != nil {
		return err
	}
	if err := encodeNode(bw, m.Root, m.TargetKind); err != nil {
		return err
	}
	if err := putUvarint(bw, uint64(len(m.Outliers))); err != nil {
		return err
	}
	prev := 0
	for _, o := range m.Outliers {
		if o.Row < prev {
			return fmt.Errorf("cart: outliers not in increasing row order (%d after %d)", o.Row, prev)
		}
		if err := putUvarint(bw, uint64(o.Row-prev)); err != nil {
			return err
		}
		prev = o.Row
		if m.TargetKind == table.Numeric {
			if err := putFloat32(bw, o.Num); err != nil {
				return err
			}
		} else if err := putUvarint(bw, uint64(o.Code)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeModel reads a model written by Encode.
func DecodeModel(r io.Reader) (*Model, error) {
	br := asByteReader(r)
	target, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("cart: reading model target: %w", err)
	}
	if target > 1<<30 {
		return nil, fmt.Errorf("cart: implausible target attribute %d", target)
	}
	kindByte, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("cart: reading model kind: %w", err)
	}
	kind := table.Kind(kindByte)
	if kind != table.Numeric && kind != table.Categorical {
		return nil, fmt.Errorf("cart: unknown target kind %d", kindByte)
	}
	root, err := decodeNode(br, kind, 0)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("cart: reading outlier count: %w", err)
	}
	if count > 1<<30 {
		return nil, fmt.Errorf("cart: implausible outlier count %d", count)
	}
	m := &Model{Target: int(target), TargetKind: kind, Root: root}
	row := 0
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cart: reading outlier row: %w", err)
		}
		// A huge delta narrowed to int would wrap negative, and a
		// negative Row sails under downstream `Row >= nrows` checks
		// straight into a slice-index panic. Bound it first.
		if delta > 1<<30 {
			return nil, fmt.Errorf("cart: implausible outlier row delta %d", delta)
		}
		row += int(delta)
		o := Outlier{Row: row}
		if kind == table.Numeric {
			o.Num, err = readFloat32(br)
		} else {
			var code uint64
			code, err = binary.ReadUvarint(br)
			if err == nil {
				if code > math.MaxInt32 {
					return nil, fmt.Errorf("cart: outlier code %d overflows int32", code)
				}
				o.Code = int32(code)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("cart: reading outlier value: %w", err)
		}
		m.Outliers = append(m.Outliers, o)
	}
	return m, nil
}

func encodeNode(bw *bufio.Writer, n *Node, kind table.Kind) error {
	if n == nil {
		return fmt.Errorf("cart: nil node in tree")
	}
	if n.Leaf {
		if kind == table.Numeric {
			if err := bw.WriteByte(tagLeafNum); err != nil {
				return err
			}
			return putFloat32(bw, n.NumValue)
		}
		if err := bw.WriteByte(tagLeafCat); err != nil {
			return err
		}
		return putUvarint(bw, uint64(n.CatValue))
	}
	if n.SplitIsCat {
		if err := bw.WriteByte(tagInternalCat); err != nil {
			return err
		}
		if err := putUvarint(bw, uint64(n.SplitAttr)); err != nil {
			return err
		}
		if err := putUvarint(bw, uint64(len(n.SplitLeft))); err != nil {
			return err
		}
		for _, c := range n.SplitLeft {
			if err := putUvarint(bw, uint64(c)); err != nil {
				return err
			}
		}
	} else {
		if err := bw.WriteByte(tagInternalNum); err != nil {
			return err
		}
		if err := putUvarint(bw, uint64(n.SplitAttr)); err != nil {
			return err
		}
		if err := putFloat32(bw, n.SplitValue); err != nil {
			return err
		}
	}
	if err := encodeNode(bw, n.Left, kind); err != nil {
		return err
	}
	return encodeNode(bw, n.Right, kind)
}

const maxTreeDepth = 512 // defends against malformed recursive input

func decodeNode(br *bufio.Reader, kind table.Kind, depth int) (*Node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("cart: tree deeper than %d; corrupt stream", maxTreeDepth)
	}
	tag, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("cart: reading node tag: %w", err)
	}
	switch tag {
	case tagLeafNum:
		if kind != table.Numeric {
			return nil, fmt.Errorf("cart: numeric leaf in categorical model")
		}
		v, err := readFloat32(br)
		if err != nil {
			return nil, err
		}
		return &Node{Leaf: true, NumValue: v}, nil
	case tagLeafCat:
		if kind != table.Categorical {
			return nil, fmt.Errorf("cart: categorical leaf in numeric model")
		}
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if c > math.MaxInt32 {
			return nil, fmt.Errorf("cart: leaf code %d overflows int32", c)
		}
		return &Node{Leaf: true, CatValue: int32(c)}, nil
	case tagInternalNum, tagInternalCat:
		attr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if attr > 1<<30 {
			return nil, fmt.Errorf("cart: implausible split attribute %d", attr)
		}
		n := &Node{SplitAttr: int(attr)}
		if tag == tagInternalCat {
			n.SplitIsCat = true
			k, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if k > 1<<20 {
				return nil, fmt.Errorf("cart: implausible split set size %d", k)
			}
			n.SplitLeft = make([]int32, 0, minInt(int(k), 1<<12))
			for i := uint64(0); i < k; i++ {
				c, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				if c > math.MaxInt32 {
					return nil, fmt.Errorf("cart: split code %d overflows int32", c)
				}
				n.SplitLeft = append(n.SplitLeft, int32(c))
			}
		} else {
			n.SplitValue, err = readFloat32(br)
			if err != nil {
				return nil, err
			}
		}
		if n.Left, err = decodeNode(br, kind, depth+1); err != nil {
			return nil, err
		}
		if n.Right, err = decodeNode(br, kind, depth+1); err != nil {
			return nil, err
		}
		return n, nil
	default:
		return nil, fmt.Errorf("cart: unknown node tag %d", tag)
	}
}

func putUvarint(bw *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := bw.Write(buf[:n])
	return err
}

func putFloat32(bw *bufio.Writer, v float64) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
	_, err := bw.Write(buf[:])
	return err
}

func readFloat32(br *bufio.Reader) (float64, error) {
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func asByteReader(r io.Reader) *bufio.Reader {
	if br, ok := r.(*bufio.Reader); ok {
		return br
	}
	return bufio.NewReader(r)
}
