package cart

import (
	"fmt"

	"repro/internal/table"
)

// ValidateStructure checks a (typically freshly decoded) model against a
// schema: every split attribute must be in range, satisfy `usable` (e.g.
// be materialized), and match the split form's kind; categorical leaf,
// split-set and outlier codes must fit the corresponding dictionaries.
// This is what makes running an untrusted model safe.
func (m *Model) ValidateStructure(schema table.Schema, dictSizes []int, usable func(int) bool) error {
	if m.Target < 0 || m.Target >= len(schema) {
		return fmt.Errorf("cart: model target %d out of range", m.Target)
	}
	if m.TargetKind != schema[m.Target].Kind {
		return fmt.Errorf("cart: model kind mismatch for attribute %d", m.Target)
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("cart: nil node")
		}
		if n.Leaf {
			if m.TargetKind == table.Categorical &&
				(n.CatValue < 0 || int(n.CatValue) >= dictSizes[m.Target]) {
				return fmt.Errorf("cart: leaf code %d outside dictionary of attribute %d", n.CatValue, m.Target)
			}
			return nil
		}
		if n.SplitAttr < 0 || n.SplitAttr >= len(schema) {
			return fmt.Errorf("cart: split attribute %d out of range", n.SplitAttr)
		}
		if !usable(n.SplitAttr) {
			return fmt.Errorf("cart: split attribute %d is not materialized", n.SplitAttr)
		}
		wantCat := schema[n.SplitAttr].Kind == table.Categorical
		if n.SplitIsCat != wantCat {
			return fmt.Errorf("cart: split form mismatch on attribute %d", n.SplitAttr)
		}
		if n.SplitIsCat {
			for _, c := range n.SplitLeft {
				if c < 0 || int(c) >= dictSizes[n.SplitAttr] {
					return fmt.Errorf("cart: split code %d outside dictionary of attribute %d", c, n.SplitAttr)
				}
			}
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	if err := walk(m.Root); err != nil {
		return err
	}
	if m.TargetKind == table.Categorical {
		for _, o := range m.Outliers {
			if o.Code < 0 || int(o.Code) >= dictSizes[m.Target] {
				return fmt.Errorf("cart: outlier code %d outside dictionary of attribute %d", o.Code, m.Target)
			}
		}
	}
	return nil
}
