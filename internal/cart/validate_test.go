package cart

import (
	"testing"

	"repro/internal/table"
)

func validateFixture() (table.Schema, []int) {
	schema := table.Schema{
		{Name: "n0", Kind: table.Numeric},
		{Name: "n1", Kind: table.Numeric},
		{Name: "c2", Kind: table.Categorical},
		{Name: "c3", Kind: table.Categorical},
	}
	dictSizes := []int{0, 0, 3, 2}
	return schema, dictSizes
}

func allMat(int) bool { return true }

func TestValidateStructureAccepts(t *testing.T) {
	schema, dicts := validateFixture()
	m := &Model{Target: 3, TargetKind: table.Categorical, Root: &Node{
		SplitAttr: 0, SplitValue: 1.5,
		Left: &Node{SplitAttr: 2, SplitIsCat: true, SplitLeft: []int32{0, 2},
			Left:  &Node{Leaf: true, CatValue: 0},
			Right: &Node{Leaf: true, CatValue: 1}},
		Right: &Node{Leaf: true, CatValue: 1},
	}, Outliers: []Outlier{{Row: 3, Code: 1}}}
	if err := m.ValidateStructure(schema, dicts, allMat); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestValidateStructureRejects(t *testing.T) {
	schema, dicts := validateFixture()
	leaf := func(code int32) *Node { return &Node{Leaf: true, CatValue: code} }
	cases := []struct {
		name   string
		m      *Model
		usable func(int) bool
	}{
		{"target out of range",
			&Model{Target: 9, TargetKind: table.Categorical, Root: leaf(0)}, allMat},
		{"kind mismatch",
			&Model{Target: 0, TargetKind: table.Categorical, Root: leaf(0)}, allMat},
		{"split attr out of range",
			&Model{Target: 3, TargetKind: table.Categorical, Root: &Node{
				SplitAttr: 7, Left: leaf(0), Right: leaf(1)}}, allMat},
		{"split attr not materialized",
			&Model{Target: 3, TargetKind: table.Categorical, Root: &Node{
				SplitAttr: 0, Left: leaf(0), Right: leaf(1)}},
			func(a int) bool { return a != 0 }},
		{"split form mismatch (numeric split on categorical attr)",
			&Model{Target: 3, TargetKind: table.Categorical, Root: &Node{
				SplitAttr: 2, SplitIsCat: false, Left: leaf(0), Right: leaf(1)}}, allMat},
		{"split code outside dictionary",
			&Model{Target: 3, TargetKind: table.Categorical, Root: &Node{
				SplitAttr: 2, SplitIsCat: true, SplitLeft: []int32{9},
				Left: leaf(0), Right: leaf(1)}}, allMat},
		{"leaf code outside dictionary",
			&Model{Target: 3, TargetKind: table.Categorical, Root: leaf(9)}, allMat},
		{"outlier code outside dictionary",
			&Model{Target: 3, TargetKind: table.Categorical, Root: leaf(0),
				Outliers: []Outlier{{Row: 1, Code: 5}}}, allMat},
		{"nil child",
			&Model{Target: 1, TargetKind: table.Numeric, Root: &Node{
				SplitAttr: 0, Left: &Node{Leaf: true}}}, allMat},
	}
	for _, c := range cases {
		if err := c.m.ValidateStructure(schema, dicts, c.usable); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
