// Package codec defines the wire format of a SPARTAN-compressed table
// T_c = <T', {M₁…Mₚ}> (paper §2.2): a schema header, the list of
// materialized attributes, the serialized CaRT models with their outlier
// lists, and the deflated projection T' of the (quantized) table onto the
// materialized attributes.
//
// Decoding reverses the pipeline: T' columns are restored verbatim and the
// predicted columns are recomputed by running each model over T' and
// patching its outliers — which is possible in a single pass because
// SPARTAN never lets a predicted attribute act as a predictor.
package codec

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cart"
	"repro/internal/table"
)

const magic = "SPRTN1\n"

// Breakdown reports where the compressed bytes went; the paper quotes
// these fractions (e.g. "CaRTs + outliers consume 6.25% of the
// uncompressed table").
type Breakdown struct {
	HeaderBytes int // magic, schema, dictionaries, attribute lists
	ModelBytes  int // serialized CaRTs including outliers
	TPrimeBytes int // deflated materialized projection
}

// Total returns the full compressed size in bytes.
func (b Breakdown) Total() int { return b.HeaderBytes + b.ModelBytes + b.TPrimeBytes }

// Encode writes the compressed stream. src must be the full-width table
// whose materialized columns carry the final (e.g. fascicle-quantized)
// values; predicted columns of src are ignored (the models replace them).
// models must have distinct targets, all outside materialized, and their
// predictors inside it.
func Encode(w io.Writer, src *table.Table, materialized []int, models []*cart.Model) (Breakdown, error) {
	var bd Breakdown
	if err := validatePlan(src, materialized, models); err != nil {
		return bd, err
	}

	var header bytes.Buffer
	hw := bufio.NewWriter(&header)
	_, _ = header.WriteString(magic) // bytes.Buffer writes cannot fail
	if err := writeSchema(hw, src); err != nil {
		return bd, err
	}
	if err := putUvarint(hw, uint64(src.NumRows())); err != nil {
		return bd, err
	}
	if err := putUvarint(hw, uint64(len(materialized))); err != nil {
		return bd, err
	}
	sorted := append([]int(nil), materialized...)
	sort.Ints(sorted)
	for _, a := range sorted {
		if err := putUvarint(hw, uint64(a)); err != nil {
			return bd, err
		}
	}
	if err := hw.Flush(); err != nil {
		return bd, err
	}
	bd.HeaderBytes = header.Len()

	var modelBuf bytes.Buffer
	mw := bufio.NewWriter(&modelBuf)
	if err := putUvarint(mw, uint64(len(models))); err != nil {
		return bd, err
	}
	if err := mw.Flush(); err != nil {
		return bd, err
	}
	ms := append([]*cart.Model(nil), models...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Target < ms[j].Target })
	for _, m := range ms {
		if err := m.Encode(&modelBuf); err != nil {
			return bd, err
		}
	}
	// The models section is length-prefixed and CRC-protected: the T'
	// block inherits gzip's checksum, models need their own.
	var modelHdr bytes.Buffer
	hw2 := bufio.NewWriter(&modelHdr)
	if err := putUvarint(hw2, uint64(modelBuf.Len())); err != nil {
		return bd, err
	}
	if err := hw2.Flush(); err != nil {
		return bd, err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(modelBuf.Bytes()))
	_, _ = modelHdr.Write(crcBuf[:]) // bytes.Buffer writes cannot fail
	bd.ModelBytes = modelHdr.Len() + modelBuf.Len()

	var tprime bytes.Buffer
	zw, err := gzip.NewWriterLevel(&tprime, gzip.BestCompression)
	if err != nil {
		return bd, err
	}
	zbw := bufio.NewWriter(zw)
	for _, a := range sorted {
		if err := writeColumn(zbw, src.Col(a)); err != nil {
			return bd, err
		}
	}
	if err := zbw.Flush(); err != nil {
		return bd, err
	}
	if err := zw.Close(); err != nil {
		return bd, err
	}
	bd.TPrimeBytes = tprime.Len() + uvarintLen(uint64(tprime.Len()))

	for _, chunk := range [][]byte{header.Bytes(), modelHdr.Bytes(), modelBuf.Bytes()} {
		if _, err := w.Write(chunk); err != nil {
			return bd, err
		}
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(tprime.Len()))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return bd, err
	}
	if _, err := w.Write(tprime.Bytes()); err != nil {
		return bd, err
	}
	return bd, nil
}

func validatePlan(src *table.Table, materialized []int, models []*cart.Model) error {
	isMat := make(map[int]bool, len(materialized))
	for _, a := range materialized {
		if a < 0 || a >= src.NumCols() {
			return fmt.Errorf("codec: materialized attribute %d out of range", a)
		}
		if isMat[a] {
			return fmt.Errorf("codec: duplicate materialized attribute %d", a)
		}
		isMat[a] = true
	}
	targets := make(map[int]bool, len(models))
	for _, m := range models {
		if m.Target < 0 || m.Target >= src.NumCols() {
			return fmt.Errorf("codec: model target %d out of range", m.Target)
		}
		if isMat[m.Target] {
			return fmt.Errorf("codec: attribute %d both materialized and predicted", m.Target)
		}
		if targets[m.Target] {
			return fmt.Errorf("codec: duplicate model for attribute %d", m.Target)
		}
		targets[m.Target] = true
		for _, p := range m.UsedPredictors() {
			if !isMat[p] {
				return fmt.Errorf("codec: model for %d uses non-materialized predictor %d", m.Target, p)
			}
		}
	}
	if len(materialized)+len(models) != src.NumCols() {
		return fmt.Errorf("codec: %d materialized + %d predicted != %d attributes",
			len(materialized), len(models), src.NumCols())
	}
	return nil
}

// DecodeLimits caps the resources a hostile or corrupt stream can claim
// before its payload backs the claim up. The zero value of every field
// selects a generous default, so limits are always on: Decode applies
// them as-is and DecodeLimited lets callers tighten (or, by setting huge
// values, effectively loosen) individual caps.
type DecodeLimits struct {
	// MaxRows bounds the header's row count (default 1<<34).
	MaxRows uint64
	// MaxCols bounds the schema's column count (default 1<<16).
	MaxCols uint64
	// MaxDictEntries bounds each categorical dictionary (default 1<<24).
	MaxDictEntries uint64
	// MaxModelBytes bounds the serialized models section (default 1<<31).
	MaxModelBytes uint64
	// MaxUnverifiedRows bounds the row count of a stream with no
	// materialized columns, where no payload ever substantiates the
	// claimed count (default 1<<26).
	MaxUnverifiedRows uint64
}

// WithDefaults returns the limits with zero fields replaced by their
// documented defaults, for callers outside the codec (e.g. the archive
// footer parser) that bound their own allocations by the same caps.
func (l DecodeLimits) WithDefaults() DecodeLimits { return l.withDefaults() }

func (l DecodeLimits) withDefaults() DecodeLimits {
	if l.MaxRows == 0 {
		l.MaxRows = 1 << 34
	}
	if l.MaxCols == 0 {
		l.MaxCols = 1 << 16
	}
	if l.MaxDictEntries == 0 {
		l.MaxDictEntries = 1 << 24
	}
	if l.MaxModelBytes == 0 {
		l.MaxModelBytes = 1 << 31
	}
	if l.MaxUnverifiedRows == 0 {
		l.MaxUnverifiedRows = 1 << 26
	}
	return l
}

// maxDeflateRatio is the largest expansion stored deflate data can
// achieve (one literal per bit plus framing, ≈1032:1). The T' block's
// compressed length therefore bounds how many decompressed bytes — and
// hence rows — the stream can actually deliver, letting Decode reject
// inflated header row counts before allocating for them.
const maxDeflateRatio = 1032

// Decode reads a compressed stream and reconstructs the full table,
// applying the default DecodeLimits.
func Decode(r io.Reader) (*table.Table, error) {
	return DecodeLimited(r, DecodeLimits{})
}

// DecodeLimited is Decode with explicit resource limits; zero fields of
// lim keep their defaults. Streams whose headers claim more than the
// limits allow — or more rows than their T' payload could possibly
// deliver — fail early with a descriptive error instead of allocating.
func DecodeLimited(r io.Reader, lim DecodeLimits) (*table.Table, error) {
	return decode(bufio.NewReader(r), lim)
}

// DecodeCounted is DecodeLimited that additionally reports how many
// bytes of r the stream logically occupied — read-ahead the decoder
// buffered but never interpreted is excluded. Framed containers use the
// count to verify a stream fills its declared length exactly: a shorter
// stream means the frame carries trailing bytes that would desync every
// later frame.
func DecodeCounted(r io.Reader, lim DecodeLimits) (*table.Table, int64, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	t, err := decode(br, lim)
	return t, cr.n - int64(br.Buffered()), err
}

// countingReader counts the bytes drawn from the underlying reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func decode(br *bufio.Reader, lim DecodeLimits) (*table.Table, error) {
	lim = lim.withDefaults()
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("codec: bad magic %q", got)
	}
	schema, dicts, err := readSchemaLimited(br, lim)
	if err != nil {
		return nil, err
	}
	ncols := len(schema)
	nrowsU, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("codec: reading row count: %w", err)
	}
	if nrowsU > lim.MaxRows {
		return nil, fmt.Errorf("codec: row count %d exceeds limit %d", nrowsU, lim.MaxRows)
	}
	nrows := int(nrowsU)
	nmat, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("codec: reading materialized count: %w", err)
	}
	if nmat > uint64(ncols) {
		return nil, fmt.Errorf("codec: %d materialized attributes for %d columns", nmat, ncols)
	}
	matIdx := make([]int, nmat)
	isMat := make([]bool, ncols)
	for i := range matIdx {
		a, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("codec: reading materialized attribute: %w", err)
		}
		if a >= uint64(ncols) || isMat[a] {
			return nil, fmt.Errorf("codec: bad materialized attribute %d", a)
		}
		matIdx[i] = int(a)
		isMat[a] = true
	}
	// Models section: length-prefixed, CRC32-protected.
	modelsLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("codec: reading models length: %w", err)
	}
	if modelsLen > lim.MaxModelBytes {
		return nil, fmt.Errorf("codec: models length %d exceeds limit %d", modelsLen, lim.MaxModelBytes)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("codec: reading models checksum: %w", err)
	}
	wantCRC := binary.LittleEndian.Uint32(crcBuf[:])
	modelBytes := make([]byte, 0, minInt(int(modelsLen), 1<<20))
	modelBytes, err = readFullGrowing(br, modelBytes, int(modelsLen), lim)
	if err != nil {
		return nil, fmt.Errorf("codec: reading models: %w", err)
	}
	if got := crc32.ChecksumIEEE(modelBytes); got != wantCRC {
		return nil, fmt.Errorf("codec: models checksum mismatch (%08x != %08x)", got, wantCRC)
	}
	mbr := bufio.NewReader(bytes.NewReader(modelBytes))
	nmodels, err := binary.ReadUvarint(mbr)
	if err != nil {
		return nil, fmt.Errorf("codec: reading model count: %w", err)
	}
	if nmodels != uint64(ncols)-nmat {
		return nil, fmt.Errorf("codec: %d models for %d predicted attributes", nmodels, uint64(ncols)-nmat)
	}
	dictSizes := make([]int, ncols)
	for i, d := range dicts {
		dictSizes[i] = len(d)
	}
	models := make([]*cart.Model, nmodels)
	for i := range models {
		m, err := cart.DecodeModel(mbr)
		if err != nil {
			return nil, fmt.Errorf("codec: decoding model %d: %w", i, err)
		}
		if m.Target >= ncols || isMat[m.Target] {
			return nil, fmt.Errorf("codec: model %d has invalid target %d", i, m.Target)
		}
		if err := m.ValidateStructure(schema, dictSizes, func(a int) bool { return isMat[a] }); err != nil {
			return nil, fmt.Errorf("codec: model %d: %w", i, err)
		}
		for _, o := range m.Outliers {
			// The lower bound matters as much as the upper one: a wrapped
			// delta in the model stream would yield a negative row, which
			// indexes the column slice from the wrong end in Reconstruct.
			if o.Row < 0 || o.Row >= nrows {
				return nil, fmt.Errorf("codec: outlier row %d beyond %d rows", o.Row, nrows)
			}
		}
		models[i] = m
	}

	// T' block. Before trusting the header's row count, cross-check it
	// against what the compressed payload could possibly contain: every
	// materialized column costs at least one decompressed byte per row,
	// and deflate expands at most maxDeflateRatio:1, so a claimed count
	// beyond tpLen·ratio/nmat rows cannot be backed by data. This rejects
	// inflated headers before any row-sized work begins.
	tpLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("codec: reading T' length: %w", err)
	}
	if tpLen > math.MaxInt64 {
		return nil, fmt.Errorf("codec: implausible T' length %d", tpLen)
	}
	if nmat > 0 {
		maxRows := uint64(math.MaxUint64)
		if tpLen < math.MaxUint64/maxDeflateRatio {
			maxRows = tpLen * maxDeflateRatio / nmat
		}
		if uint64(nrows) > maxRows {
			return nil, fmt.Errorf("codec: %d rows cannot fit in a %d-byte T' block", nrows, tpLen)
		}
	} else if uint64(nrows) > lim.MaxUnverifiedRows {
		// With no materialized columns the claimed row count is never
		// substantiated by payload, so cap it outright.
		return nil, fmt.Errorf("codec: %d rows with no materialized columns exceeds limit %d", nrows, lim.MaxUnverifiedRows)
	}
	zr, err := gzip.NewReader(io.LimitReader(br, int64(tpLen)))
	if err != nil {
		return nil, fmt.Errorf("codec: opening T' stream: %w", err)
	}
	defer zr.Close()
	zbr := bufio.NewReader(zr)

	cols := make([]*table.Column, ncols)
	for a := 0; a < ncols; a++ {
		cols[a] = &table.Column{Kind: schema[a].Kind, Dict: dicts[a]}
	}
	for _, a := range matIdx {
		if err := readColumn(zbr, cols[a], nrows); err != nil {
			return nil, fmt.Errorf("codec: reading column %d: %w", a, err)
		}
	}
	// The T' block must end exactly where its columns do. Reading one more
	// byte forces gzip through its trailer (the columns alone can be
	// satisfied from buffered output), so the full declared tpLen is
	// consumed from the stream; any residue means the declared length and
	// the payload disagree — a corrupt or hostile frame that would
	// otherwise silently desync callers framing streams back to back.
	if _, err := zbr.ReadByte(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("codec: trailing data in T' block")
		}
		return nil, fmt.Errorf("codec: draining T' block: %w", err)
	}

	// Routing table: placeholder predicted columns so PredictRow can walk
	// split attributes (which are all materialized). The row count was
	// cross-checked against the T' payload above, and the placeholders
	// grow in bounded chunks rather than one header-sized allocation, so
	// a lying stream fails cheaply instead of reserving gigabytes.
	for a := 0; a < ncols; a++ {
		if isMat[a] {
			continue
		}
		if schema[a].Kind == table.Numeric {
			cols[a].Floats = zeroFloats(nrows)
			continue
		}
		if nrows > 0 && len(dicts[a]) == 0 {
			return nil, fmt.Errorf("codec: predicted categorical attribute %d has empty dictionary", a)
		}
		cols[a].Codes = zeroCodes(nrows)
	}
	routing, err := table.New(schema, cols)
	if err != nil {
		return nil, fmt.Errorf("codec: assembling T': %w", err)
	}
	// Predicted columns are mutually independent (predictors are always
	// materialized), so models reconstruct in parallel. ValidateStructure
	// above already guarantees every produced code fits its dictionary.
	// The semaphore caps live goroutines at GOMAXPROCS: a hostile or
	// merely wide archive can carry thousands of models, and each
	// Reconstruct holds a full column of intermediate values.
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, m := range models {
		wg.Add(1)
		sem <- struct{}{}
		go func(m *cart.Model) {
			defer wg.Done()
			defer func() { <-sem }()
			rec := m.Reconstruct(routing, dicts[m.Target])
			if rec.Kind == table.Numeric {
				copy(cols[m.Target].Floats, rec.Floats)
			} else {
				copy(cols[m.Target].Codes, rec.Codes)
			}
		}(m)
	}
	wg.Wait()
	return table.New(schema, cols)
}

// EstimateBitsPerValue encodes a column exactly as the T' block would
// (dictionary or raw cells, then deflate) and returns the achieved bits
// per value. SPARTAN uses this on sample columns to price materialization
// honestly during CaRT selection. The fixed gzip stream overhead is
// excluded and the result is floored at 0.25 bits.
func EstimateBitsPerValue(c *table.Column) (float64, error) {
	n := c.Len()
	if n == 0 {
		return 0, nil
	}
	var body bytes.Buffer
	zw, err := gzip.NewWriterLevel(&body, gzip.BestSpeed)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(zw)
	if err := writeColumn(bw, c); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	payload := body.Len() - 24
	if payload < 1 {
		payload = 1
	}
	bits := float64(payload*8) / float64(n)
	if bits < 0.25 {
		bits = 0.25
	}
	return bits, nil
}

// Numeric column encodings inside the T' block. Fascicle quantization
// leaves materialized columns with few distinct values, so a value
// dictionary plus per-row indexes usually beats raw 4-byte cells (and the
// surrounding gzip crushes the index stream further).
const (
	numEncRaw  byte = 0 // nrows × float32
	numEncDict byte = 1 // dict size, dict of float32, nrows × uvarint index
)

// dictLimit caps the dictionary encoding: beyond this many distinct
// values, raw float32 cells are at least as compact.
const dictLimit = 1 << 16

func writeColumn(bw *bufio.Writer, c *table.Column) error {
	if c.Kind == table.Numeric {
		return writeNumericColumn(bw, c.Floats)
	}
	for _, code := range c.Codes {
		if err := putUvarint(bw, uint64(code)); err != nil {
			return err
		}
	}
	return nil
}

func writeNumericColumn(bw *bufio.Writer, vals []float64) error {
	index := make(map[float64]int, 256)
	for _, v := range vals {
		if _, ok := index[v]; !ok {
			if len(index) >= dictLimit {
				index = nil
				break
			}
			index[v] = 0
		}
	}
	if index == nil {
		if err := bw.WriteByte(numEncRaw); err != nil {
			return err
		}
		var buf [4]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		return nil
	}
	// Deterministic dictionary: ascending value order.
	dict := make([]float64, 0, len(index))
	for v := range index {
		dict = append(dict, v)
	}
	sort.Float64s(dict)
	for i, v := range dict {
		index[v] = i
	}
	if err := bw.WriteByte(numEncDict); err != nil {
		return err
	}
	if err := putUvarint(bw, uint64(len(dict))); err != nil {
		return err
	}
	var buf [4]byte
	for _, v := range dict {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for _, v := range vals {
		if err := putUvarint(bw, uint64(index[v])); err != nil {
			return err
		}
	}
	return nil
}

func readColumn(br *bufio.Reader, c *table.Column, nrows int) error {
	if c.Kind == table.Numeric {
		floats, err := readNumericColumn(br, nrows)
		if err != nil {
			return err
		}
		c.Floats = floats
		return nil
	}
	codes := make([]int32, 0, minInt(nrows, 1<<16))
	for r := 0; r < nrows; r++ {
		code, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if code >= uint64(len(c.Dict)) {
			return fmt.Errorf("code %d outside dictionary of %d", code, len(c.Dict))
		}
		codes = append(codes, int32(code))
	}
	c.Codes = codes
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func readNumericColumn(br *bufio.Reader, nrows int) ([]float64, error) {
	enc, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, minInt(nrows, 1<<16))
	var buf [4]byte
	switch enc {
	case numEncRaw:
		for r := 0; r < nrows; r++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			out = append(out, float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))))
		}
	case numEncDict:
		dlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if dlen > dictLimit {
			return nil, fmt.Errorf("numeric dictionary size %d exceeds limit", dlen)
		}
		dict := make([]float64, dlen)
		for i := range dict {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			dict[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:])))
		}
		for r := 0; r < nrows; r++ {
			ix, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if ix >= dlen {
				return nil, fmt.Errorf("numeric dictionary index %d out of range %d", ix, dlen)
			}
			out = append(out, dict[ix])
		}
	default:
		return nil, fmt.Errorf("unknown numeric column encoding %d", enc)
	}
	return out, nil
}

// zeroFloats and zeroCodes allocate placeholder column storage in
// bounded chunks instead of one header-sized request, matching the
// incremental-growth policy used everywhere else header varints drive
// allocation.
func zeroFloats(n int) []float64 {
	out := make([]float64, 0, minInt(n, 1<<16))
	for len(out) < n {
		out = append(out, make([]float64, minInt(n-len(out), 1<<16))...)
	}
	return out
}

func zeroCodes(n int) []int32 {
	out := make([]int32, 0, minInt(n, 1<<16))
	for len(out) < n {
		out = append(out, make([]int32, minInt(n-len(out), 1<<16))...)
	}
	return out
}

// readFullGrowing reads exactly n bytes, growing dst incrementally so a
// lying length cannot force a huge upfront allocation. The total is
// re-checked against lim.MaxModelBytes here rather than trusting the
// caller's guard: the function is the allocation sink, so the bound
// that protects it must travel with the call.
func readFullGrowing(r io.Reader, dst []byte, n int, lim DecodeLimits) ([]byte, error) {
	lim = lim.withDefaults()
	if n < 0 || uint64(n) > lim.MaxModelBytes {
		return nil, fmt.Errorf("codec: read length %d exceeds limit %d", n, lim.MaxModelBytes)
	}
	const chunk = 1 << 20
	for len(dst) < n {
		want := n - len(dst)
		if want > chunk {
			want = chunk
		}
		start := len(dst)
		dst = append(dst, make([]byte, want)...)
		if _, err := io.ReadFull(r, dst[start:]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}

// --- schema helpers (same layout as the raw table format) ---

func writeSchema(bw *bufio.Writer, t *table.Table) error {
	if err := putUvarint(bw, uint64(t.NumCols())); err != nil {
		return err
	}
	for i := 0; i < t.NumCols(); i++ {
		a := t.Attr(i)
		if err := putString(bw, a.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(a.Kind)); err != nil {
			return err
		}
		if a.Kind == table.Categorical {
			dict := t.Col(i).Dict
			if err := putUvarint(bw, uint64(len(dict))); err != nil {
				return err
			}
			for _, s := range dict {
				if err := putString(bw, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func readSchemaLimited(br *bufio.Reader, lim DecodeLimits) (table.Schema, [][]string, error) {
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("codec: reading column count: %w", err)
	}
	if ncols == 0 || ncols > lim.MaxCols {
		return nil, nil, fmt.Errorf("codec: column count %d outside limit %d", ncols, lim.MaxCols)
	}
	schema := make(table.Schema, ncols)
	dicts := make([][]string, ncols)
	for i := range schema {
		name, err := getString(br)
		if err != nil {
			return nil, nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, nil, err
		}
		kind := table.Kind(kb)
		if kind != table.Numeric && kind != table.Categorical {
			return nil, nil, fmt.Errorf("codec: unknown kind %d", kb)
		}
		schema[i] = table.Attribute{Name: name, Kind: kind}
		if kind == table.Categorical {
			dlen, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			if dlen > lim.MaxDictEntries {
				return nil, nil, fmt.Errorf("codec: dictionary size %d exceeds limit %d", dlen, lim.MaxDictEntries)
			}
			// Grow incrementally so a lying header cannot force a huge
			// allocation before the stream runs out.
			dict := make([]string, 0, minInt(int(dlen), 1<<12))
			for d := uint64(0); d < dlen; d++ {
				s, err := getString(br)
				if err != nil {
					return nil, nil, err
				}
				dict = append(dict, s)
			}
			dicts[i] = dict
		}
	}
	return schema, dicts, nil
}

func putUvarint(bw *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := bw.Write(buf[:n])
	return err
}

func putString(bw *bufio.Writer, s string) error {
	if err := putUvarint(bw, uint64(len(s))); err != nil {
		return err
	}
	_, err := bw.WriteString(s)
	return err
}

func getString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("codec: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
