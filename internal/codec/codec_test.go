package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cart"
	"repro/internal/table"
)

// testTable: y = 3x + noise, c = sign region of x, junk independent.
// All numeric values are float32-exact.
func testTable(rng *rand.Rand, n int) *table.Table {
	schema := table.Schema{
		{Name: "x", Kind: table.Numeric},
		{Name: "y", Kind: table.Numeric},
		{Name: "c", Kind: table.Categorical},
		{Name: "junk", Kind: table.Numeric},
	}
	b := table.MustBuilder(schema)
	for i := 0; i < n; i++ {
		x := float64(rng.Intn(4000)) / 4
		cat := "lo"
		if x > 500 {
			cat = "hi"
		}
		b.MustAppendRow(x, 3*x+float64(rng.Intn(8)), cat, float64(rng.Intn(100)))
	}
	return b.MustBuild()
}

// buildPlan constructs models for y (regression, tol) and c
// (classification, exact) from x, materializing x and junk.
func buildPlan(t *testing.T, tb *table.Table, tol float64) (mats []int, models []*cart.Model) {
	t.Helper()
	mats, models, err := buildPlanErr(tb, tol)
	if err != nil {
		t.Fatal(err)
	}
	return mats, models
}

func buildPlanErr(tb *table.Table, tol float64) ([]int, []*cart.Model, error) {
	cm := cart.NewCostModel(tb)
	my, _, err := cart.Build(tb, 1, []int{0}, tol, cm, cart.Config{})
	if err != nil {
		return nil, nil, err
	}
	if err := my.ComputeOutliers(tb, tol); err != nil {
		return nil, nil, err
	}
	mc, _, err := cart.Build(tb, 2, []int{0}, 0, cm, cart.Config{})
	if err != nil {
		return nil, nil, err
	}
	if err := mc.ComputeOutliers(tb, 0); err != nil {
		return nil, nil, err
	}
	return []int{0, 3}, []*cart.Model{my, mc}, nil
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := testTable(rng, 1000)
	tol := 10.0
	mats, models := buildPlan(t, tb, tol)

	var buf bytes.Buffer
	bd, err := Encode(&buf, tb, mats, models)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() != buf.Len() {
		t.Errorf("breakdown total %d != stream length %d", bd.Total(), buf.Len())
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() || back.NumCols() != tb.NumCols() {
		t.Fatalf("shape changed: %dx%d", back.NumRows(), back.NumCols())
	}
	// Materialized columns are exact; y within tol; c exact (tolerance 0).
	diffs, err := table.MaxAbsDiff(tb, back)
	if err != nil {
		t.Fatal(err)
	}
	if diffs[0] != 0 || diffs[3] != 0 {
		t.Errorf("materialized columns differ: %v", diffs)
	}
	if diffs[1] > tol {
		t.Errorf("y error %g > tol %g", diffs[1], tol)
	}
	if diffs[2] != 0 {
		t.Errorf("c error rate %g, want 0", diffs[2])
	}
}

func TestLosslessRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tb := testTable(rng, 500)
	mats, models := buildPlan(t, tb, 0)
	var buf bytes.Buffer
	if _, err := Encode(&buf, tb, mats, models); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("lossless round trip changed the table")
	}
}

func TestBreakdownSections(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := testTable(rng, 800)
	mats, models := buildPlan(t, tb, 10)
	var buf bytes.Buffer
	bd, err := Encode(&buf, tb, mats, models)
	if err != nil {
		t.Fatal(err)
	}
	if bd.HeaderBytes <= 0 || bd.ModelBytes <= 0 || bd.TPrimeBytes <= 0 {
		t.Errorf("empty section in breakdown: %+v", bd)
	}
	// Compression must beat the raw representation on this predictable
	// table.
	if bd.Total() >= tb.RawSizeBytes() {
		t.Errorf("compressed %d B >= raw %d B", bd.Total(), tb.RawSizeBytes())
	}
}

func TestValidatePlanErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tb := testTable(rng, 100)
	_, models := buildPlan(t, tb, 10)
	var buf bytes.Buffer

	if _, err := Encode(&buf, tb, []int{0, 0, 3}, models[:1]); err == nil {
		t.Error("Encode accepted duplicate materialized attribute")
	}
	if _, err := Encode(&buf, tb, []int{0, 99}, models); err == nil {
		t.Error("Encode accepted out-of-range materialized attribute")
	}
	if _, err := Encode(&buf, tb, []int{0, 1, 3}, models); err == nil {
		t.Error("Encode accepted attribute both materialized and predicted")
	}
	if _, err := Encode(&buf, tb, []int{0, 3}, models[:1]); err == nil {
		t.Error("Encode accepted incomplete partition")
	}
	if _, err := Encode(&buf, tb, []int{0, 3}, []*cart.Model{models[0], models[0]}); err == nil {
		t.Error("Encode accepted duplicate model targets")
	}
	// Model using a non-materialized predictor.
	cm := cart.NewCostModel(tb)
	bad, _, err := cart.Build(tb, 1, []int{0}, 5, cm, cart.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(&buf, tb, []int{2, 3}, []*cart.Model{bad, mustModel(t, tb, cm, 0)}); err == nil {
		t.Error("Encode accepted model with non-materialized predictor")
	}
}

func mustModel(t *testing.T, tb *table.Table, cm *cart.CostModel, target int) *cart.Model {
	t.Helper()
	m, _, err := cart.Build(tb, target, []int{3}, 1000, cm, cart.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := testTable(rng, 200)
	mats, models := buildPlan(t, tb, 10)
	var buf bytes.Buffer
	if _, err := Encode(&buf, tb, mats, models); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("Decode accepted empty stream")
	}
	if _, err := Decode(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("Decode accepted truncated stream")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("Decode accepted bad magic")
	}
	// Flipping bytes mid-stream must error or produce a table, never
	// panic.
	for _, pos := range []int{20, len(data) / 2, len(data) - 10} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x5A
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Decode panicked on corruption at %d: %v", pos, r)
				}
			}()
			_, _ = Decode(bytes.NewReader(bad))
		}()
	}
}

func TestAllPredictedExceptOne(t *testing.T) {
	// Extreme plan: only x materialized, y and c and junk predicted (junk
	// with a huge tolerance so a single leaf suffices).
	rng := rand.New(rand.NewSource(6))
	tb := testTable(rng, 300)
	cm := cart.NewCostModel(tb)
	tolY := 12.0
	my, _, err := cart.Build(tb, 1, []int{0}, tolY, cm, cart.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := my.ComputeOutliers(tb, tolY); err != nil {
		t.Fatal(err)
	}
	mc, _, err := cart.Build(tb, 2, []int{0}, 0, cm, cart.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.ComputeOutliers(tb, 0); err != nil {
		t.Fatal(err)
	}
	mj, _, err := cart.Build(tb, 3, []int{0}, 1000, cm, cart.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mj.ComputeOutliers(tb, 1000); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, tb, []int{0}, []*cart.Model{my, mc, mj}); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := table.MaxAbsDiff(tb, back)
	if err != nil {
		t.Fatal(err)
	}
	if diffs[1] > tolY || diffs[2] != 0 || diffs[3] > 1000 {
		t.Errorf("bounds violated: %v", diffs)
	}
	if diffs[0] != 0 {
		t.Error("materialized x changed")
	}
}

// failAfter errors once n bytes have been written.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errBoom
	}
	f.written += len(p)
	return len(p), nil
}

var errBoom = errors.New("boom")

func TestEncodePropagatesWriteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := testTable(rng, 200)
	mats, models := buildPlan(t, tb, 10)
	for _, cut := range []int{0, 10, 200} {
		if _, err := Encode(&failAfter{n: cut}, tb, mats, models); err == nil {
			t.Errorf("Encode succeeded with writer failing at %d bytes", cut)
		}
	}
}

func TestDecodeDetectsModelCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tb := testTable(rng, 300)
	mats, models := buildPlan(t, tb, 10)
	var buf bytes.Buffer
	bd, err := Encode(&buf, tb, mats, models)
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle of the models section: the CRC must
	// catch it even if the byte still parses structurally.
	pos := bd.HeaderBytes + bd.ModelBytes/2
	bad := append([]byte(nil), data...)
	bad[pos] ^= 0x40
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("Decode accepted a corrupted models section")
	}
}
