package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cart"
	"repro/internal/table"
)

// FuzzDecode asserts the compressed-table decoder never panics on
// arbitrary input: it must either fail with an error or produce a valid
// table. Run with `go test -fuzz=FuzzDecode ./internal/codec` for real
// fuzzing; the seed corpus runs as a normal test.
func FuzzDecode(f *testing.F) {
	// Seed with a valid stream plus a few mutations.
	rng := rand.New(rand.NewSource(1))
	tb := testTable(rng, 50)
	mats, models := buildPlanF(f, tb, 10)
	var buf bytes.Buffer
	if _, err := Encode(&buf, tb, mats, models); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0xFF
	f.Add(mutated)
	// Hostile headers claiming resources their payload cannot back; the
	// decode limits must reject these without large allocation (see
	// limits_test.go), and the fuzzer mutates them into near misses.
	f.Add(hostileRowsStream())
	f.Add(hostileColsStream())
	f.Add(hostileDictStream())
	f.Add(hostileModelsStream())
	f.Add(hostileTPrimeStream())

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Decode(bytes.NewReader(data))
		if err == nil && tbl == nil {
			t.Error("Decode returned nil table without error")
		}
	})
}

// buildPlanF mirrors buildPlan for fuzz seeds (testing.F instead of *T).
func buildPlanF(f *testing.F, tb *table.Table, tol float64) ([]int, []*cart.Model) {
	f.Helper()
	mats, models, err := buildPlanErr(tb, tol)
	if err != nil {
		f.Fatal(err)
	}
	return mats, models
}
