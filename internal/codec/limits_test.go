package codec

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/table"
)

// hostileBuf builds streams byte-by-byte so tests can forge headers the
// encoder would never emit (claimed sizes with no payload behind them).
type hostileBuf struct{ bytes.Buffer }

func (b *hostileBuf) magic()    { _, _ = b.WriteString(magic) }
func (b *hostileBuf) b1(c byte) { _ = b.WriteByte(c) }

func (b *hostileBuf) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = b.Write(buf[:n]) // bytes.Buffer writes cannot fail
}

func (b *hostileBuf) str(s string) {
	b.uvarint(uint64(len(s)))
	_, _ = b.WriteString(s)
}

// numericSchema writes a one-column numeric schema.
func (b *hostileBuf) numericSchema() {
	b.uvarint(1)
	b.str("a")
	b.b1(byte(table.Numeric))
}

// hostileColsStream claims 2^40 columns.
func hostileColsStream() []byte {
	var b hostileBuf
	b.magic()
	b.uvarint(1 << 40)
	return b.Bytes()
}

// hostileRowsStream claims 2^40 rows behind a valid one-column schema.
func hostileRowsStream() []byte {
	var b hostileBuf
	b.magic()
	b.numericSchema()
	b.uvarint(1 << 40)
	return b.Bytes()
}

// hostileDictStream claims a 2^40-entry categorical dictionary.
func hostileDictStream() []byte {
	var b hostileBuf
	b.magic()
	b.uvarint(1)
	b.str("a")
	b.b1(byte(table.Categorical))
	b.uvarint(1 << 40)
	return b.Bytes()
}

// hostileTPrimeStream passes every individual limit but claims a row
// count (2^30, under the 2^34 default cap) that a 1-byte T' block cannot
// possibly back, triggering the payload cross-check.
func hostileTPrimeStream() []byte {
	var b hostileBuf
	b.magic()
	b.numericSchema()
	b.uvarint(1 << 30) // nrows
	b.uvarint(1)       // nmat
	b.uvarint(0)       // materialized attribute 0
	// Models section: one byte (nmodels=0) with its CRC.
	modelBytes := []byte{0}
	b.uvarint(uint64(len(modelBytes)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(modelBytes))
	_, _ = b.Write(crc[:]) // bytes.Buffer writes cannot fail
	_, _ = b.Write(modelBytes)
	b.uvarint(1) // tpLen: one byte for 2^30 claimed rows
	b.b1(0)
	return b.Bytes()
}

// hostileModelsStream claims a 2^40-byte models section.
func hostileModelsStream() []byte {
	var b hostileBuf
	b.magic()
	b.numericSchema()
	b.uvarint(10)      // nrows
	b.uvarint(1)       // nmat
	b.uvarint(0)       // materialized attribute 0
	b.uvarint(1 << 40) // modelsLen
	return b.Bytes()
}

// allocDelta runs f and reports how many bytes it allocated. The decoder
// is single-goroutine up to the point the hostile streams die, so the
// delta is deterministic enough for an order-of-magnitude bound.
func allocDelta(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestDecodeRejectsHostileHeaders feeds Decode headers whose claimed
// sizes (2^40 rows, columns, dictionary entries, model bytes; a row
// count no T' payload could deliver) must be rejected by the default
// limits — with an error naming the violated bound, and without
// allocating anything near the claimed size.
func TestDecodeRejectsHostileHeaders(t *testing.T) {
	cases := []struct {
		name    string
		stream  []byte
		wantErr string
	}{
		{"rows", hostileRowsStream(), "row count"},
		{"cols", hostileColsStream(), "column count"},
		{"dict", hostileDictStream(), "dictionary size"},
		{"models", hostileModelsStream(), "models length"},
		{"tprime", hostileTPrimeStream(), "cannot fit"},
	}
	// Well under the smallest hostile claim (2^30 rows × 8 bytes); far
	// above the decoder's legitimate buffers.
	const allocLimit = 1 << 22
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			delta := allocDelta(func() {
				_, err = Decode(bytes.NewReader(tc.stream))
			})
			if err == nil {
				t.Fatal("Decode accepted a hostile header")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
			if delta > allocLimit {
				t.Errorf("Decode allocated %d bytes rejecting the header, want < %d", delta, allocLimit)
			}
		})
	}
}

// TestReadFullGrowingCapped drives the allocation sink directly with
// lengths its callers should never let through: the function must
// enforce the DecodeLimits cap itself, erroring before any allocation
// instead of trusting the caller's guard.
func TestReadFullGrowingCapped(t *testing.T) {
	lim := DecodeLimits{MaxModelBytes: 1 << 10}
	hostile := []int{-1, 1<<10 + 1, 1 << 40}
	for _, n := range hostile {
		var err error
		delta := allocDelta(func() {
			_, err = readFullGrowing(bytes.NewReader(nil), nil, n, lim)
		})
		if err == nil {
			t.Errorf("n=%d: readFullGrowing accepted a length past the cap", n)
		} else if !strings.Contains(err.Error(), "exceeds limit") {
			t.Errorf("n=%d: error %q does not name the violated bound", n, err)
		}
		if delta > 1<<16 {
			t.Errorf("n=%d: allocated %d bytes while rejecting the length", n, delta)
		}
	}

	// Zero-value limits fall back to the defaults, and an in-cap read
	// still delivers exactly n bytes.
	payload := bytes.Repeat([]byte{0xab}, 3000)
	got, err := readFullGrowing(bytes.NewReader(payload), nil, len(payload), DecodeLimits{})
	if err != nil {
		t.Fatalf("in-cap read failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("read %d bytes, want %d identical bytes", len(got), len(payload))
	}
	// Truncated input surfaces the read error, not a silent short buffer.
	if _, err := readFullGrowing(bytes.NewReader(payload[:10]), nil, 3000, lim); err == nil {
		t.Error("truncated stream did not error")
	}
}

// TestDecodeLimitedTightens verifies explicit limits override the
// defaults: a stream the default limits accept fails a tightened cap,
// and zero-valued fields keep their defaults.
func TestDecodeLimitedTightens(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := testTable(rng, 200)
	mats, models := buildPlan(t, tb, 10)
	var buf bytes.Buffer
	if _, err := Encode(&buf, tb, mats, models); err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeLimited(bytes.NewReader(buf.Bytes()), DecodeLimits{}); err != nil {
		t.Fatalf("zero-value limits rejected a valid stream: %v", err)
	}
	if _, err := DecodeLimited(bytes.NewReader(buf.Bytes()), DecodeLimits{MaxRows: 100}); err == nil {
		t.Error("MaxRows=100 accepted a 200-row stream")
	}
	if _, err := DecodeLimited(bytes.NewReader(buf.Bytes()), DecodeLimits{MaxCols: 1}); err == nil {
		t.Error("MaxCols=1 accepted a multi-column stream")
	}
}
