package core_test

import (
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
)

// TestCompressContextPreCancelled asserts that an already-cancelled
// context stops the pipeline before the first phase runs: no bytes are
// written, the error wraps context.Canceled and names the phase, and the
// root span carries cancelled=true.
func TestCompressContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	tb := datagen.CDR(500, 1)
	tr := obs.NewTrace("compress")
	var sink countingWriter
	_, err := core.CompressContext(ctx, &sink, tb, core.Options{Trace: tr})
	if err == nil {
		t.Fatal("CompressContext succeeded with a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), core.SpanDependencyFinder) {
		t.Errorf("error %q does not name the phase it died in", err)
	}
	if sink.n != 0 {
		t.Errorf("%d bytes written despite pre-cancelled context", sink.n)
	}
	root := tr.Find(core.SpanCompress)
	if root == nil {
		t.Fatal("missing root span")
	}
	if v, _ := root.Attr("cancelled").(bool); !v {
		t.Error("root span not annotated cancelled=true")
	}
}

// TestCompressContextMidFlight cancels the context between the first and
// second phase (via a span observer, so the cancel is deterministically
// mid-pipeline) and asserts the run aborts promptly, wraps
// context.Canceled, annotates the dying phase's span, and leaks no
// goroutines.
func TestCompressContextMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := obs.NewTrace("compress")
	var cancelledAt time.Time
	tr.OnSpanEnd(func(sp *obs.Span) {
		if sp.Name == core.SpanDependencyFinder {
			cancelledAt = time.Now()
			cancel()
		}
	})

	tb := datagen.CDR(5000, 1)
	_, err := core.CompressContext(ctx, io.Discard, tb, core.Options{Trace: tr})
	returned := time.Now()
	if err == nil {
		t.Fatal("CompressContext succeeded despite mid-flight cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), core.SpanCaRTSelection) {
		t.Errorf("error %q does not name the phase it died in", err)
	}
	if d := returned.Sub(cancelledAt); d > 100*time.Millisecond {
		t.Errorf("pipeline took %v after cancel, want <100ms", d)
	}

	// The cancelled phase's span (and the root) must be annotated.
	if sp := tr.Find(core.SpanCaRTSelection); sp != nil {
		if v, _ := sp.Attr("cancelled").(bool); !v {
			t.Error("cancelled phase span not annotated cancelled=true")
		}
	}
	if root := tr.Find(core.SpanCompress); root != nil {
		if v, _ := root.Attr("cancelled").(bool); !v {
			t.Error("root span not annotated cancelled=true")
		}
	}

	// No goroutine may outlive the call: poll briefly for workers to
	// unwind, then compare against the baseline (with slack for the
	// runtime's own background goroutines).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestCompressContextDeadline drives cancellation through a deadline
// instead of an explicit cancel, exercising the in-phase checkpoints:
// the tiny budget expires inside a running phase, not at a boundary.
func TestCompressContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()

	tb := datagen.CDR(20000, 1)
	_, err := core.CompressContext(ctx, io.Discard, tb, core.Options{})
	if err == nil {
		t.Skip("machine fast enough to finish inside the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "spartan: ") {
		t.Errorf("error %q does not carry the pipeline prefix", err)
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
