// Package core orchestrates SPARTAN's four components (paper §2.3) into
// the end-to-end compression pipeline:
//
//	DependencyFinder → CaRTSelector ⇄ CaRTBuilder → RowAggregator → codec
//
// It is the paper's primary contribution — everything else under internal/
// is a substrate it composes. The exported types here are re-exported by
// the root spartan package, which is the intended import path for users.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/bayesnet"
	"repro/internal/cart"
	"repro/internal/codec"
	"repro/internal/fascicle"
	"repro/internal/obs"
	"repro/internal/selector"
	"repro/internal/table"
)

// Span names emitted by Compress, one per pipeline component (paper
// §2.3) plus the encoder, all children of SpanCompress. Consumers keying
// metrics or assertions off the trace should use these constants.
const (
	SpanCompress         = "compress"
	SpanDependencyFinder = "dependency_finder"
	SpanCaRTSelection    = "cart_selection"
	SpanRowAggregation   = "row_aggregation"
	SpanOutlierScan      = "outlier_scan"
	SpanEncode           = "encode"
)

// PhaseSpans lists the per-component span names in pipeline order.
var PhaseSpans = []string{
	SpanDependencyFinder, SpanCaRTSelection, SpanRowAggregation, SpanOutlierScan, SpanEncode,
}

// SelectionStrategy picks the CaRTSelector algorithm (paper §3.2).
type SelectionStrategy int

const (
	// SelectWMISParents runs MaxIndependentSet with parent neighborhoods —
	// the paper's default and its best cost/time trade-off (Table 1).
	SelectWMISParents SelectionStrategy = iota
	// SelectWMISMarkov runs MaxIndependentSet with Markov-blanket
	// neighborhoods (slightly better ratios, slower).
	SelectWMISMarkov
	// SelectGreedy runs the single-pass Greedy selector.
	SelectGreedy
)

// String names the strategy as in Table 1 of the paper.
func (s SelectionStrategy) String() string {
	switch s {
	case SelectGreedy:
		return "Greedy"
	case SelectWMISMarkov:
		return "WMIS(Markov)"
	default:
		return "WMIS(Parent)"
	}
}

// Options configures compression. The zero value requests lossless
// compression with the paper's default knobs.
type Options struct {
	// Tolerances is the error-tolerance vector ē; nil means all-zero
	// (lossless). Quantile-form numeric entries are resolved against the
	// input table's value ranges.
	Tolerances table.Tolerances
	// SampleBytes is the model-inference sample size (the paper's default
	// is 50 KB, §4.1). Zero selects the default.
	SampleBytes int
	// Selection picks the CaRT-selection algorithm (default
	// SelectWMISParents).
	Selection SelectionStrategy
	// Theta is Greedy's relative-benefit threshold (default 2, §4.1).
	Theta float64
	// Prune selects the CaRT pruning strategy (default PruneIntegrated).
	Prune cart.PruneMode
	// DisableRowAggregation turns off the fascicle pass over T'
	// (ablation).
	DisableRowAggregation bool
	// MaxFascicles is the RowAggregator's fascicle budget (the paper's P,
	// default 500).
	MaxFascicles int
	// Seed fixes all sampling randomness; zero means seed 1. Compression
	// is fully deterministic for a given (table, options) pair.
	Seed int64
	// ScanWorkers bounds the outlier scan's concurrency; zero selects
	// GOMAXPROCS. Segmented archive writers set 1 so segment-level
	// parallelism is not multiplied by per-segment scan parallelism.
	// The setting affects scheduling only, never output bytes.
	ScanWorkers int
	// Trace, when non-nil, receives one span per pipeline component
	// (see PhaseSpans) under a SpanCompress root, annotated with rows
	// scanned, CaRTs built, outliers found and bytes written. Tracing is
	// always on internally — Timings is derived from the spans — so
	// supplying a Trace costs nothing extra.
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.SampleBytes <= 0 {
		o.SampleBytes = 50 << 10
	}
	if o.Theta <= 0 {
		o.Theta = 2
	}
	if o.MaxFascicles <= 0 {
		o.MaxFascicles = 500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Timings records per-component wall-clock time, mirroring the paper's
// §4.2 running-time accounting. It is derived from the pipeline trace
// spans (see Options.Trace), kept as a struct for convenient access.
type Timings struct {
	DependencyFinder time.Duration
	CaRTSelection    time.Duration // includes all CaRT builds
	OutlierScan      time.Duration // full-table pass applying the models
	RowAggregation   time.Duration
	Encode           time.Duration
}

// Total sums all phases.
func (t Timings) Total() time.Duration {
	return t.DependencyFinder + t.CaRTSelection + t.OutlierScan + t.RowAggregation + t.Encode
}

// Stats describes one compression run.
type Stats struct {
	RawBytes        int     // uncompressed fixed-record size of the input
	CompressedBytes int     // total output size
	Ratio           float64 // CompressedBytes / RawBytes (smaller is better)

	Predicted    []string // names of CaRT-predicted attributes
	Materialized []string // names of materialized attributes
	CartsBuilt   int      // CaRTs constructed during selection
	Outliers     int      // total outlier values stored
	Fascicles    int      // fascicles found by the RowAggregator

	HeaderBytes int // schema + dictionaries + attribute lists
	ModelBytes  int // serialized CaRTs incl. outliers
	TPrimeBytes int // deflated materialized projection

	Timings Timings
}

// Compress writes the semantically compressed form of t to w and reports
// statistics. The input table is not modified. It is CompressContext with
// a background context; long-running or per-request callers should prefer
// CompressContext so the pipeline can be cancelled.
func Compress(w io.Writer, t *table.Table, opts Options) (*Stats, error) {
	return CompressContext(context.Background(), w, t, opts)
}

// CompressContext is Compress with cancellation: the pipeline checks ctx
// at every phase boundary and inside each phase's long-running inner
// loops (WMIS candidate rounds, per-node CaRT growth, fascicle seed
// growth, outlier row batches), so a cancelled or expired context
// abandons the run within milliseconds. The returned error wraps
// ctx.Err() together with the phase the run died in, and the trace span
// of that phase (plus the root) is annotated cancelled=true.
func CompressContext(ctx context.Context, w io.Writer, t *table.Table, opts Options) (*Stats, error) {
	if t == nil || t.NumCols() == 0 {
		return nil, fmt.Errorf("spartan: nil or empty table")
	}
	opts = opts.withDefaults()
	tol := opts.Tolerances
	if tol == nil {
		tol = table.ZeroTolerances(t)
	}
	resolved, err := tol.Resolve(t)
	if err != nil {
		return nil, err
	}
	stats := &Stats{RawBytes: t.RawSizeBytes()}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Tracing is unconditional: Timings is read off the spans, and a
	// caller-supplied Trace additionally sees every span (plus whatever
	// observer it registered via OnSpanEnd).
	tr := opts.Trace
	if tr == nil {
		tr = obs.NewTrace(SpanCompress)
	}
	root := tr.Start(SpanCompress)
	root.SetAttr("rows", t.NumRows()).
		SetAttr("cols", t.NumCols()).
		SetAttr("raw_bytes", stats.RawBytes)
	defer root.Finish()

	// DependencyFinder: Bayesian network on a sample. A quarter of the
	// sample budget is held out for honest prediction-cost estimates
	// during selection.
	var (
		sample, build, holdout *table.Table
		net                    *bayesnet.Network
	)
	err = runPhase(ctx, root, SpanDependencyFinder, &stats.Timings.DependencyFinder, func(sp *obs.Span) error {
		sample = t.SampleBytes(opts.SampleBytes, rng)
		var err error
		build, holdout, err = splitSample(sample)
		if err != nil {
			return fmt.Errorf("spartan: dependency finder: %w", err)
		}
		net, err = bayesnet.Build(sample, bayesnet.Config{MaxParents: 6})
		if err != nil {
			return fmt.Errorf("spartan: dependency finder: %w", err)
		}
		sp.SetAttr("sample_rows", sample.NumRows()).
			SetAttr("sample_budget_bytes", opts.SampleBytes)
		return nil
	})
	if err != nil {
		return nil, failCompress(root, err)
	}

	// CaRTSelector. Materialization costs are estimated by entropy-coding
	// the sample's columns, so the MaterCost-vs-PredCost trade-off matches
	// what the T' encoder actually achieves.
	var plan *selector.Result
	err = runPhase(ctx, root, SpanCaRTSelection, &stats.Timings.CaRTSelection, func(sp *obs.Span) error {
		cost := cart.NewCostModel(t)
		materBits, err := estimateMaterBits(sample)
		if err != nil {
			return fmt.Errorf("spartan: CaRT selection: %w", err)
		}
		for i, bits := range materBits {
			cost.SetMaterBits(i, bits)
		}
		in := selector.Input{
			Sample:  build,
			Holdout: holdout,
			Tol:     resolved,
			Net:     net,
			Cost:    cost,
			CartCfg: cart.Config{FullRows: t.NumRows(), Prune: opts.Prune},
		}
		switch opts.Selection {
		case SelectGreedy:
			plan, err = selector.GreedyContext(ctx, in, opts.Theta)
		case SelectWMISMarkov:
			plan, err = selector.MaxIndependentSetContext(ctx, in, selector.MarkovBlanket)
		default:
			plan, err = selector.MaxIndependentSetContext(ctx, in, selector.Parents)
		}
		if err != nil {
			return fmt.Errorf("spartan: CaRT selection: %w", err)
		}
		stats.CartsBuilt = plan.CartsBuilt
		for _, a := range plan.Predicted {
			stats.Predicted = append(stats.Predicted, t.Attr(a).Name)
		}
		for _, a := range plan.Materialized {
			stats.Materialized = append(stats.Materialized, t.Attr(a).Name)
		}
		sp.SetAttr("strategy", opts.Selection.String()).
			SetAttr("carts_built", plan.CartsBuilt).
			SetAttr("predicted", len(plan.Predicted)).
			SetAttr("materialized", len(plan.Materialized))
		return nil
	})
	if err != nil {
		return nil, failCompress(root, err)
	}

	// RowAggregator: fascicle-quantize the materialized projection without
	// crossing any CaRT split value.
	applyTable := t
	err = runPhase(ctx, root, SpanRowAggregation, &stats.Timings.RowAggregation, func(sp *obs.Span) error {
		if !opts.DisableRowAggregation && len(plan.Materialized) > 0 {
			var err error
			applyTable, stats.Fascicles, err = rowAggregate(ctx, t, plan, resolved, opts)
			if err != nil {
				return fmt.Errorf("spartan: row aggregation: %w", err)
			}
		}
		sp.SetAttr("fascicles", stats.Fascicles)
		return nil
	})
	if err != nil {
		return nil, failCompress(root, err)
	}

	// Outlier scan: one pass over the full table per model (paper §2.3:
	// "SPARTAN then uses the CaRTs built to compress the full data set in
	// one pass").
	models := make([]*cart.Model, len(plan.Predicted))
	err = runPhase(ctx, root, SpanOutlierScan, &stats.Timings.OutlierScan, func(sp *obs.Span) error {
		// One scan per predicted attribute, bounded to GOMAXPROCS workers
		// (the same semaphore pattern the WMIS selector uses) so a wide
		// table cannot spawn hundreds of full-table scans at once. Each
		// scan checks ctx between row batches.
		scanErrs := make([]error, len(plan.Predicted))
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0)
		if opts.ScanWorkers > 0 {
			workers = opts.ScanWorkers
		}
		sem := make(chan struct{}, workers)
		for i, a := range plan.Predicted {
			wg.Add(1)
			sem <- struct{}{}
			go func(i, a int) {
				defer wg.Done()
				defer func() { <-sem }()
				m := plan.Models[a]
				var perClass map[int32]float64
				if t.Attr(a).Kind == table.Categorical {
					perClass = resolved[a].ClassBudgets(t.Col(a).Dict)
				}
				scanErrs[i] = m.ComputeOutliersBudgetContext(ctx, applyTable, resolved[a].Value, perClass)
				models[i] = m
			}(i, a)
		}
		wg.Wait()
		for _, err := range scanErrs {
			if err != nil {
				return fmt.Errorf("spartan: outlier scan: %w", err)
			}
		}
		for _, m := range models {
			stats.Outliers += len(m.Outliers)
		}
		sp.SetAttr("rows_scanned", t.NumRows()*len(plan.Predicted)).
			SetAttr("outliers", stats.Outliers)
		return nil
	})
	if err != nil {
		return nil, failCompress(root, err)
	}

	// Encode.
	err = runPhase(ctx, root, SpanEncode, &stats.Timings.Encode, func(sp *obs.Span) error {
		bd, err := codec.Encode(w, applyTable, plan.Materialized, models)
		if err != nil {
			return fmt.Errorf("spartan: encoding: %w", err)
		}
		stats.HeaderBytes = bd.HeaderBytes
		stats.ModelBytes = bd.ModelBytes
		stats.TPrimeBytes = bd.TPrimeBytes
		stats.CompressedBytes = bd.Total()
		if stats.RawBytes > 0 {
			stats.Ratio = float64(stats.CompressedBytes) / float64(stats.RawBytes)
		}
		sp.SetAttr("bytes_written", stats.CompressedBytes).
			SetAttr("header_bytes", stats.HeaderBytes).
			SetAttr("model_bytes", stats.ModelBytes).
			SetAttr("tprime_bytes", stats.TPrimeBytes)
		return nil
	})
	if err != nil {
		return nil, failCompress(root, err)
	}
	root.SetAttr("ratio", fmt.Sprintf("%.4f", stats.Ratio))
	return stats, nil
}

// runPhase runs one pipeline component inside a child span of root,
// refusing to start it at all when ctx is already done (the phase
// boundary checkpoint). The span's Finish is deferred so an error return
// (or a panic in fn) can never leak an open span, and the phase's
// wall-clock time lands in *timing even on failure — partial runs still
// account their cost. A phase killed by cancellation gets its span
// annotated cancelled=true.
func runPhase(ctx context.Context, root *obs.Span, name string, timing *time.Duration, fn func(sp *obs.Span) error) (err error) {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("spartan: %s: %w", name, cerr)
	}
	sp := root.StartChild(name)
	defer func() {
		if isCancellation(err) {
			sp.SetAttr("cancelled", true)
		}
		sp.Finish()
		*timing = sp.Duration()
	}()
	return fn(sp)
}

// failCompress marks the root span of a run that died from cancellation
// and passes the error through, so every error return of CompressContext
// leaves a correctly-annotated trace.
func failCompress(root *obs.Span, err error) error {
	if isCancellation(err) {
		root.SetAttr("cancelled", true)
	}
	return err
}

// isCancellation reports whether err stems from a done context.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// estimateMaterBits prices each attribute's materialization by running
// the codec's own column encoder (dictionary/raw + deflate) over the
// sample column, so the selector's MaterCost reflects real T' bytes.
func estimateMaterBits(sample *table.Table) ([]float64, error) {
	out := make([]float64, sample.NumCols())
	for i := 0; i < sample.NumCols(); i++ {
		bits, err := codec.EstimateBitsPerValue(sample.Col(i))
		if err != nil {
			return nil, fmt.Errorf("estimating column %d bits: %w", i, err)
		}
		out[i] = bits
	}
	return out, nil
}

// splitSample partitions the sample into build (3/4) and holdout (1/4)
// subsets by row position. With fewer than 8 rows the whole sample builds
// and no holdout is used.
func splitSample(sample *table.Table) (build, holdout *table.Table, err error) {
	n := sample.NumRows()
	if n < 8 {
		return sample, nil, nil
	}
	var buildRows, holdRows []int
	for r := 0; r < n; r++ {
		if r%4 == 3 {
			holdRows = append(holdRows, r)
		} else {
			buildRows = append(buildRows, r)
		}
	}
	b, err := sample.SelectRows(buildRows)
	if err != nil {
		return nil, nil, fmt.Errorf("sample split: %w", err)
	}
	h, err := sample.SelectRows(holdRows)
	if err != nil {
		return nil, nil, fmt.Errorf("sample split: %w", err)
	}
	return b, h, nil
}

// rowAggregate runs the fascicle pass over the materialized projection and
// grafts the quantized columns into a full-width copy of t.
func rowAggregate(ctx context.Context, t *table.Table, plan *selector.Result, resolved table.Tolerances, opts Options) (*table.Table, int, error) {
	proj, err := t.Project(plan.Materialized)
	if err != nil {
		return nil, 0, err
	}
	widths := make([]float64, proj.NumCols())
	splits := make([][]float64, proj.NumCols())
	splitsByAttr := collectSplitValues(plan)
	for i, a := range plan.Materialized {
		if t.Attr(a).Kind == table.Numeric {
			widths[i] = resolved[a].Value
			splits[i] = splitsByAttr[a]
		}
	}
	clustering, err := fascicle.ClusterContext(ctx, proj, fascicle.Params{
		Widths:       widths,
		SplitValues:  splits,
		MaxFascicles: opts.MaxFascicles,
	})
	if err != nil {
		return nil, 0, err
	}
	quantized := clustering.Quantize(proj)

	cols := make([]*table.Column, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		cols[i] = t.Col(i)
	}
	for i, a := range plan.Materialized {
		cols[a] = quantized.Col(i)
	}
	merged, err := table.New(t.Schema(), cols)
	if err != nil {
		return nil, 0, err
	}
	return merged, len(clustering.Fascicles), nil
}

// collectSplitValues walks every selected model and gathers, per
// attribute, the numeric split thresholds whose straddling the
// RowAggregator must avoid (paper §3.4).
func collectSplitValues(plan *selector.Result) map[int][]float64 {
	out := map[int][]float64{}
	for _, m := range plan.Models {
		var walk func(n *cart.Node)
		walk = func(n *cart.Node) {
			if n == nil || n.Leaf {
				return
			}
			if !n.SplitIsCat {
				out[n.SplitAttr] = append(out[n.SplitAttr], n.SplitValue)
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(m.Root)
	}
	return out
}

// Decompress reconstructs a table from a stream produced by Compress.
func Decompress(r io.Reader) (*table.Table, error) {
	return codec.Decode(r)
}
