package core

import (
	"bytes"
	"testing"

	"repro/internal/datagen"
	"repro/internal/table"
)

func TestSplitSample(t *testing.T) {
	tb := datagen.CDR(100, 1)
	build, holdout, err := splitSample(tb)
	if err != nil {
		t.Fatal(err)
	}
	if build.NumRows()+holdout.NumRows() != tb.NumRows() {
		t.Fatalf("split %d+%d != %d", build.NumRows(), holdout.NumRows(), tb.NumRows())
	}
	if holdout.NumRows() != 25 {
		t.Errorf("holdout = %d rows, want 25 (a quarter)", holdout.NumRows())
	}

	// Tiny samples skip the holdout entirely.
	small := datagen.CDR(5, 1)
	b2, h2, err := splitSample(small)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != small || h2 != nil {
		t.Error("tiny sample should not be split")
	}
}

func TestEstimateMaterBits(t *testing.T) {
	// A constant column must cost far less than a random one.
	schema := table.Schema{
		{Name: "const", Kind: table.Numeric},
		{Name: "rand", Kind: table.Numeric},
		{Name: "cat", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	for i := 0; i < 1000; i++ {
		b.MustAppendRow(7.0, float64(i)*1.37+float64(i%97), "v")
	}
	tb := b.MustBuild()
	bits, err := estimateMaterBits(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 3 {
		t.Fatalf("bits = %v", bits)
	}
	if bits[0] >= bits[1] {
		t.Errorf("constant column %g bits/value not cheaper than varying %g", bits[0], bits[1])
	}
	if bits[0] <= 0 || bits[2] <= 0 {
		t.Errorf("floors not applied: %v", bits)
	}
	// Random float column should cost several bits per value.
	if bits[1] < 4 {
		t.Errorf("high-entropy column estimated at %g bits/value", bits[1])
	}
}

func TestRowAggregateAllCategoricalMaterialized(t *testing.T) {
	// Row aggregation with only categorical materialized attributes is a
	// no-op for values but must not fail.
	schema := table.Schema{
		{Name: "a", Kind: table.Categorical},
		{Name: "b", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	for i := 0; i < 300; i++ {
		b.MustAppendRow("x", []string{"p", "q"}[i%2])
	}
	tb := b.MustBuild()
	var buf bytes.Buffer
	stats, err := Compress(&buf, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("all-categorical round trip changed table")
	}
	_ = stats
}

func TestCompressRejectsNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Compress(&buf, nil, Options{}); err == nil {
		t.Error("Compress accepted nil table")
	}
}

func TestTimingsTotal(t *testing.T) {
	ti := Timings{DependencyFinder: 1, CaRTSelection: 2, OutlierScan: 3, RowAggregation: 4, Encode: 5}
	if ti.Total() != 15 {
		t.Errorf("Total = %d", ti.Total())
	}
}

func TestSelectionStrategyStrings(t *testing.T) {
	if SelectGreedy.String() != "Greedy" ||
		SelectWMISParents.String() != "WMIS(Parent)" ||
		SelectWMISMarkov.String() != "WMIS(Markov)" {
		t.Error("strategy names wrong")
	}
}
