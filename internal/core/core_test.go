package core

import (
	"bytes"
	"testing"

	"repro/internal/cart"
	"repro/internal/datagen"
	"repro/internal/selector"
	"repro/internal/table"
)

func TestPipelineRoundTrip(t *testing.T) {
	tb := datagen.CDR(1200, 21)
	tol, err := table.UniformTolerances(tb, 0.01, 0).Resolve(tb)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	stats, err := Compress(&buf, tb, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(&buf)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := table.MaxAbsDiff(tb, back)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range diffs {
		if d > tol[i].Value+1e-9 {
			t.Errorf("attribute %d error %g > %g", i, d, tol[i].Value)
		}
	}
	if stats.Ratio <= 0 || stats.Ratio >= 1 {
		t.Errorf("ratio = %g, want in (0,1) for CDR data", stats.Ratio)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.SampleBytes != 50<<10 {
		t.Errorf("SampleBytes default = %d, want 50KB (paper §4.1)", o.SampleBytes)
	}
	if o.Theta != 2 {
		t.Errorf("Theta default = %g, want 2 (paper §4.1)", o.Theta)
	}
	if o.MaxFascicles != 500 {
		t.Errorf("MaxFascicles default = %d, want 500 (paper §4.1)", o.MaxFascicles)
	}
	if o.Seed != 1 {
		t.Errorf("Seed default = %d, want 1", o.Seed)
	}
}

func TestCollectSplitValues(t *testing.T) {
	m := &cart.Model{Target: 5, TargetKind: table.Numeric, Root: &cart.Node{
		SplitAttr: 0, SplitValue: 10,
		Left: &cart.Node{Leaf: true},
		Right: &cart.Node{
			SplitAttr: 0, SplitValue: 20,
			Left:  &cart.Node{SplitAttr: 2, SplitIsCat: true, SplitLeft: []int32{1}, Left: &cart.Node{Leaf: true}, Right: &cart.Node{Leaf: true}},
			Right: &cart.Node{Leaf: true},
		},
	}}
	plan := &selector.Result{Models: map[int]*cart.Model{5: m}}
	got := collectSplitValues(plan)
	if len(got[0]) != 2 {
		t.Errorf("attr 0 splits = %v, want two thresholds", got[0])
	}
	if len(got[2]) != 0 {
		t.Errorf("categorical split leaked into numeric split values: %v", got[2])
	}
}
