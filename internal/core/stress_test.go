package core

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/table"
)

// TestStressParallelPipeline drives the two fan-out points of the
// pipeline — the GOMAXPROCS-bounded outlier scan inside Compress and
// the GOMAXPROCS-bounded model reconstruction inside Decompress — from
// several pipelines at once. Its job is to give the race detector
// something to bite on: the static guarantees from the conc analyzers
// (locksetrace, boundedspawn) say these phases are sharded and
// semaphore-bounded; this test is the dynamic half of that claim.
// It runs in CI's race job and is skipped under -short.
func TestStressParallelPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: meaningful only under -race in the full run")
	}

	const pipelines = 4
	rows := 600 * runtime.GOMAXPROCS(0)
	if rows > 6000 {
		rows = 6000
	}

	var wg sync.WaitGroup
	for p := 0; p < pipelines; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tb := datagen.CDR(rows, seed)
			tol, err := table.UniformTolerances(tb, 0.01, 0).Resolve(tb)
			if err != nil {
				t.Error(err)
				return
			}
			var buf bytes.Buffer
			if _, err := Compress(&buf, tb, Options{Tolerances: tol}); err != nil {
				t.Errorf("compress (seed %d): %v", seed, err)
				return
			}
			blob := buf.Bytes()
			// Decode the same archive from two goroutines so the
			// per-model reconstruction fan-out overlaps with itself.
			var inner sync.WaitGroup
			for d := 0; d < 2; d++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					back, err := Decompress(bytes.NewReader(blob))
					if err != nil {
						t.Errorf("decompress (seed %d): %v", seed, err)
						return
					}
					if back.NumRows() != tb.NumRows() {
						t.Errorf("seed %d: round trip rows = %d, want %d", seed, back.NumRows(), tb.NumRows())
					}
				}()
			}
			inner.Wait()
		}(int64(p + 1))
	}
	wg.Wait()
}
