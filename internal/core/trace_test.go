package core_test

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
)

// TestCompressTrace asserts that one span is emitted per pipeline phase,
// under a single root, with monotonic timestamps, and that the Timings
// struct agrees with the span durations.
func TestCompressTrace(t *testing.T) {
	tb := datagen.CDR(2000, 1)
	tr := obs.NewTrace("compress")
	stats, err := core.Compress(io.Discard, tb, core.Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}

	root := tr.Find(core.SpanCompress)
	if root == nil {
		t.Fatal("missing root compress span")
	}
	if root.Depth != 0 || root.End.IsZero() {
		t.Fatalf("root span depth=%d finished=%v", root.Depth, !root.End.IsZero())
	}

	spans := tr.Spans()
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
	}
	for _, phase := range core.PhaseSpans {
		if byName[phase] != 1 {
			t.Errorf("phase %q: %d spans, want exactly 1", phase, byName[phase])
		}
	}
	if len(spans) != len(core.PhaseSpans)+1 {
		t.Errorf("got %d spans, want %d", len(spans), len(core.PhaseSpans)+1)
	}

	// Monotonic: spans are reported in start order; each phase must end
	// before the next begins, every span must close inside the root, and
	// no span may end before it starts.
	var prev *obs.Span
	for _, s := range spans[1:] {
		if s.Depth != 1 {
			t.Errorf("span %q depth = %d, want 1", s.Name, s.Depth)
		}
		if s.End.Before(s.Start) {
			t.Errorf("span %q ends before it starts", s.Name)
		}
		if s.Start.Before(root.Start) || s.End.After(root.End) {
			t.Errorf("span %q [%v, %v] escapes root [%v, %v]",
				s.Name, s.Start, s.End, root.Start, root.End)
		}
		if prev != nil && s.Start.Before(prev.End) {
			t.Errorf("span %q starts before %q ends", s.Name, prev.Name)
		}
		prev = s
	}

	// Timings must be exactly the span durations.
	checks := []struct {
		name string
		want int64
	}{
		{core.SpanDependencyFinder, int64(stats.Timings.DependencyFinder)},
		{core.SpanCaRTSelection, int64(stats.Timings.CaRTSelection)},
		{core.SpanRowAggregation, int64(stats.Timings.RowAggregation)},
		{core.SpanOutlierScan, int64(stats.Timings.OutlierScan)},
		{core.SpanEncode, int64(stats.Timings.Encode)},
	}
	for _, c := range checks {
		if got := int64(tr.Find(c.name).Duration()); got != c.want {
			t.Errorf("Timings for %q = %d, span duration %d", c.name, c.want, got)
		}
	}

	// The §4.2 quantities ride on the spans.
	if got := tr.Find(core.SpanCaRTSelection).Attr("carts_built"); got != stats.CartsBuilt {
		t.Errorf("carts_built attr = %v, want %d", got, stats.CartsBuilt)
	}
	if got := tr.Find(core.SpanOutlierScan).Attr("outliers"); got != stats.Outliers {
		t.Errorf("outliers attr = %v, want %d", got, stats.Outliers)
	}
	if got := tr.Find(core.SpanEncode).Attr("bytes_written"); got != stats.CompressedBytes {
		t.Errorf("bytes_written attr = %v, want %d", got, stats.CompressedBytes)
	}

	// The rendered tree mentions every phase.
	var b strings.Builder
	tr.WriteTree(&b)
	for _, phase := range core.PhaseSpans {
		if !strings.Contains(b.String(), phase) {
			t.Errorf("tree missing phase %q:\n%s", phase, b.String())
		}
	}
}

// TestCompressTraceObserver checks the OnSpanEnd hook fires once per span
// so a metrics registry can be fed from the pipeline.
func TestCompressTraceObserver(t *testing.T) {
	tb := datagen.CDR(500, 2)
	tr := obs.NewTrace("compress")
	var ended []string
	tr.OnSpanEnd(func(s *obs.Span) { ended = append(ended, s.Name) })
	if _, err := core.Compress(io.Discard, tb, core.Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if len(ended) != len(core.PhaseSpans)+1 {
		t.Fatalf("observer fired %d times (%v), want %d", len(ended), ended, len(core.PhaseSpans)+1)
	}
	// Root finishes last.
	if ended[len(ended)-1] != core.SpanCompress {
		t.Errorf("last ended span = %q, want %q", ended[len(ended)-1], core.SpanCompress)
	}
}
