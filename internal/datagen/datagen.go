// Package datagen synthesizes tables that stand in for the three real-life
// data sets of the paper's evaluation (§4.1), which are not redistributable
// here. Each generator preserves the structural properties that drove the
// paper's results (DESIGN.md §4):
//
//   - Census: equal mix of small-domain categorical and numeric attributes
//     with demographic-style dependencies (the regime where fascicles catch
//     up with CaRTs at high tolerances);
//   - Corel: 32 numeric, strongly correlated histogram-like features with
//     latent cluster structure (the all-numeric regime where SPARTAN's
//     regression trees win by the largest factor);
//   - ForestCover: 10 numeric terrain attributes with physical dependencies
//     plus 44 categorical attributes including one-hot blocks functionally
//     determined by the numerics (strong column-wise dependencies).
//
// All generators are deterministic for a given seed.
package datagen

import (
	"math"
	"math/rand"
	"strconv"

	"repro/internal/table"
)

// Census synthesizes a CPS-like table: 7 numeric and 7 categorical
// attributes, n rows. Like the real CPS extract, several columns are
// recodes or derivations of others (education of educ_years, age_group of
// age, income_band of weekly_earn, employment of weekly_hours, weekly_earn
// of pay × hours), which is the cross-column redundancy SPARTAN exploits;
// the remaining survey fields carry irreducible per-row entropy.
func Census(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	schema := table.Schema{
		{Name: "age", Kind: table.Numeric},
		{Name: "educ_years", Kind: table.Numeric},
		{Name: "hourly_pay", Kind: table.Numeric},
		{Name: "weekly_hours", Kind: table.Numeric},
		{Name: "weekly_earn", Kind: table.Numeric},
		{Name: "household_size", Kind: table.Numeric},
		{Name: "tenure_years", Kind: table.Numeric},
		{Name: "education", Kind: table.Categorical},
		{Name: "age_group", Kind: table.Categorical},
		{Name: "income_band", Kind: table.Categorical},
		{Name: "marital", Kind: table.Categorical},
		{Name: "employment", Kind: table.Categorical},
		{Name: "region", Kind: table.Categorical},
		{Name: "occupation", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	maritals := []string{"single", "married", "divorced", "widowed"}
	regions := []string{"northeast", "midwest", "south", "west"}
	for i := 0; i < n; i++ {
		age := 18 + float64(rng.Intn(73))
		educYears := 8 + float64(rng.Intn(13)) // 8..20
		education := educationLevel(educYears)
		occIdx := occupationFor(educYears, rng)
		// Pay is a graded multiple of the occupation/education base.
		pay := round2(basePay(occIdx, educYears) * (1 + 0.05*float64(rng.Intn(5)-2)))
		// Hours concentrate on full/part-time points.
		var hours float64
		switch h := rng.Float64(); {
		case h < 0.08:
			hours, pay = 0, 0 // not employed
		case h < 0.78:
			hours = 40
		case h < 0.93:
			hours = 20
		default:
			hours = 10 + float64(rng.Intn(30))
		}
		employment := employmentStatus(hours)
		earn := round2(pay * hours)
		marital := maritals[rng.Intn(len(maritals))]
		if age < 22 && rng.Float64() < 0.8 {
			marital = "single"
		}
		tenure := math.Min(age-18, 30)*0.6 + float64(rng.Intn(3))
		b.MustAppendRow(
			age, educYears, pay, hours, earn,
			float64(1+rng.Intn(6)), tenure,
			education, ageGroup(age), incomeBand(earn),
			marital, employment, regions[rng.Intn(4)],
			occupations[occIdx],
		)
	}
	return b.MustBuild()
}

func employmentStatus(hours float64) string {
	switch {
	case hours == 0:
		return "unemployed"
	case hours < 35:
		return "parttime"
	default:
		return "fulltime"
	}
}

func ageGroup(age float64) string {
	switch {
	case age < 25:
		return "18-24"
	case age < 35:
		return "25-34"
	case age < 45:
		return "35-44"
	case age < 55:
		return "45-54"
	case age < 65:
		return "55-64"
	default:
		return "65+"
	}
}

func incomeBand(earn float64) string {
	switch {
	case earn == 0:
		return "none"
	case earn < 400:
		return "low"
	case earn < 800:
		return "middle"
	case earn < 1400:
		return "upper"
	default:
		return "high"
	}
}

var occupations = []string{
	"service", "clerical", "trades", "operator",
	"professional", "management", "technical", "sales",
}

func educationLevel(years float64) string {
	switch {
	case years < 12:
		return "no_diploma"
	case years < 13:
		return "high_school"
	case years < 16:
		return "some_college"
	case years < 18:
		return "bachelor"
	default:
		return "graduate"
	}
}

func occupationFor(educYears float64, rng *rand.Rand) int {
	if educYears >= 16 {
		return 4 + rng.Intn(4) // professional..sales
	}
	return rng.Intn(4)
}

func basePay(occIdx int, educYears float64) float64 {
	return 8 + 3*float64(occIdx) + 1.5*(educYears-8)
}

// round2 rounds to cents and then through float32: every numeric value the
// generators emit is exactly representable in the 4-byte cell format, so
// raw serialization and lossless (ē=0) compression are bit-exact.
func round2(v float64) float64 { return f32(math.Round(v*100) / 100) }

func f32(v float64) float64 { return float64(float32(v)) }

// Corel synthesizes a color-histogram-like table: 32 numeric attributes,
// n rows. Each row is a smooth unimodal-to-bimodal histogram driven by a
// low-dimensional latent (dominant hue position, bump width, secondary
// hue): bins vary smoothly with their neighbors, making every column
// highly predictable from a few others — the low-rank manifold structure
// of real color histograms that drove the paper's strongest result.
func Corel(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	const dims = 32
	schema := make(table.Schema, dims)
	for d := 0; d < dims; d++ {
		schema[d] = table.Attribute{Name: "hist" + strconv.Itoa(d), Kind: table.Numeric}
	}
	b := table.MustBuilder(schema)
	row := make([]any, dims)
	vals := make([]float64, dims)
	for i := 0; i < n; i++ {
		// Latent image parameters: a dominant color bin whose mass decays
		// exponentially into neighboring bins (a few discrete decay
		// lengths), plus a weaker secondary color with continuous weight.
		// Most cells are near zero; non-zero cells are smooth functions of
		// a low-dimensional latent — the sparse, strongly-correlated shape
		// of real color histograms.
		dom := rng.Intn(dims)                 // dominant color bin
		decay := 1 + 0.5*float64(rng.Intn(3)) // decay length: 1, 1.5, 2
		sec := rng.Intn(dims)                 // secondary color bin
		mix := 0.15 * rng.Float64()           // secondary weight (continuous)
		total := 0.0
		for d := 0; d < dims; d++ {
			v := math.Exp(-math.Abs(float64(d-dom))/decay) +
				mix*math.Exp(-math.Abs(float64(d-sec))/(decay*1.5))
			if rng.Float64() < 0.01 {
				v += 0.3 * rng.Float64() // rare speckle (outlier source)
			}
			vals[d] = v
			total += v
		}
		for d := 0; d < dims; d++ {
			// Real color-histogram features are pixel-count fractions of
			// large per-image totals — effectively continuous. Quantize at
			// 1e-5 like the UCI feature files (then through float32 for
			// wire-format exactness).
			row[d] = f32(math.Round(vals[d]/total*1e5) / 1e5)
		}
		b.MustAppendRow(row...)
	}
	return b.MustBuild()
}

// ForestCover synthesizes a covertype-like table: 10 numeric terrain
// attributes and 44 categorical attributes (cover class, 3 aggregate
// categorical descriptors, 4 one-hot wilderness flags and 36 one-hot soil
// flags), n rows.
func ForestCover(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	schema := table.Schema{
		{Name: "elevation", Kind: table.Numeric},
		{Name: "aspect", Kind: table.Numeric},
		{Name: "slope", Kind: table.Numeric},
		{Name: "h_dist_water", Kind: table.Numeric},
		{Name: "v_dist_water", Kind: table.Numeric},
		{Name: "h_dist_road", Kind: table.Numeric},
		{Name: "hillshade_9am", Kind: table.Numeric},
		{Name: "hillshade_noon", Kind: table.Numeric},
		{Name: "hillshade_3pm", Kind: table.Numeric},
		{Name: "h_dist_fire", Kind: table.Numeric},
		{Name: "cover_type", Kind: table.Categorical},
		{Name: "climate_zone", Kind: table.Categorical},
		{Name: "geology", Kind: table.Categorical},
		{Name: "aspect_octant", Kind: table.Categorical},
	}
	for w := 0; w < 4; w++ {
		schema = append(schema, table.Attribute{
			Name: "wilderness_" + strconv.Itoa(w), Kind: table.Categorical})
	}
	for s := 0; s < 36; s++ {
		schema = append(schema, table.Attribute{
			Name: "soil_" + strconv.Itoa(s), Kind: table.Categorical})
	}
	b := table.MustBuilder(schema)
	covers := []string{"spruce", "lodgepole", "ponderosa", "cottonwood", "aspen", "douglas", "krummholz"}
	row := make([]any, len(schema))
	for i := 0; i < n; i++ {
		elev := 1800 + 1600*rng.Float64()
		aspect := float64(rng.Intn(360))
		slope := math.Abs(rng.NormFloat64() * 8)
		if slope > 50 {
			slope = 50
		}
		slope = math.Round(slope)
		// Hillshades are deterministic trig functions of aspect and slope
		// plus small noise — exactly the kind of column-wise dependency
		// CaRT compression exploits.
		hs9 := hillshade(aspect, slope, 45)
		hsNoon := hillshade(aspect, slope, 180)
		hs3 := hillshade(aspect, slope, 315)
		// Distances correlate with elevation.
		hWater := math.Round(math.Abs((elev-1800)/3 + rng.NormFloat64()*60))
		vWater := math.Round(hWater/8 + rng.NormFloat64()*10)
		hRoad := math.Round(math.Abs((3400-elev)*2 + rng.NormFloat64()*300))
		hFire := math.Round(math.Abs((elev-2000)*1.5 + rng.NormFloat64()*400))

		elevBand := int((elev - 1800) / 400) // 0..3
		wilderness := elevBand
		soil := soilFor(elevBand, slope, rng)
		cover := coverFor(elev, slope, rng, covers)
		climate := "montane"
		if elev > 2800 {
			climate = "subalpine"
		}
		if elev > 3200 {
			climate = "alpine"
		}
		geology := "igneous"
		if soil%3 == 1 {
			geology = "glacial"
		} else if soil%3 == 2 {
			geology = "alluvium"
		}

		row[0] = math.Round(elev)
		row[1] = aspect
		row[2] = slope
		row[3] = hWater
		row[4] = vWater
		row[5] = hRoad
		row[6] = hs9
		row[7] = hsNoon
		row[8] = hs3
		row[9] = hFire
		row[10] = cover
		row[11] = climate
		row[12] = geology
		row[13] = octant(aspect)
		for w := 0; w < 4; w++ {
			row[14+w] = boolStr(w == wilderness)
		}
		for s := 0; s < 36; s++ {
			row[18+s] = boolStr(s == soil)
		}
		b.MustAppendRow(row...)
	}
	return b.MustBuild()
}

func hillshade(aspect, slope, sunAzimuth float64) float64 {
	rad := math.Pi / 180
	zenith := 40 * rad
	v := math.Cos(zenith)*math.Cos(slope*rad) +
		math.Sin(zenith)*math.Sin(slope*rad)*math.Cos((sunAzimuth-aspect)*rad)
	if v < 0 {
		v = 0
	}
	return math.Round(v * 254)
}

func soilFor(elevBand int, slope float64, rng *rand.Rand) int {
	base := elevBand * 9
	if slope > 20 {
		base += 4
	}
	return base + rng.Intn(5)
}

func coverFor(elev, slope float64, rng *rand.Rand, covers []string) string {
	switch {
	case elev > 3300:
		return covers[6] // krummholz
	case elev > 2900:
		if rng.Float64() < 0.7 {
			return covers[0] // spruce
		}
		return covers[1]
	case elev > 2400:
		if slope > 15 && rng.Float64() < 0.4 {
			return covers[5]
		}
		return covers[1] // lodgepole
	case elev > 2100:
		return covers[2+rng.Intn(2)]
	default:
		return covers[4]
	}
}

func octant(aspect float64) string {
	names := []string{"N", "NE", "E", "SE", "S", "SW", "W", "NW"}
	return names[int(math.Mod(aspect+22.5, 360)/45)]
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// CDR synthesizes a call-detail-record table in the spirit of the paper's
// motivating example (§1): per-call network, timestamp and billing fields
// with strong inter-attribute dependencies (tariff → plan/peak/type,
// duration × tariff → charge, trunk → exchange).
func CDR(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	schema := table.Schema{
		{Name: "start_hour", Kind: table.Numeric},
		{Name: "duration_sec", Kind: table.Numeric},
		{Name: "rate_cents_min", Kind: table.Numeric},
		{Name: "charge_cents", Kind: table.Numeric},
		{Name: "src_exchange", Kind: table.Categorical},
		{Name: "dst_exchange", Kind: table.Categorical},
		{Name: "trunk", Kind: table.Categorical},
		{Name: "plan", Kind: table.Categorical},
		{Name: "peak", Kind: table.Categorical},
		{Name: "call_type", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	exchanges := []string{"201", "212", "315", "408", "415", "607", "716", "908"}
	plans := []string{"basic", "saver", "business"}
	rates := map[string]float64{"basic": 10, "saver": 7, "business": 5}
	for i := 0; i < n; i++ {
		hour := float64(rng.Intn(24))
		dur := math.Round(math.Abs(rng.NormFloat64())*240 + 20)
		src := exchanges[rng.Intn(len(exchanges))]
		dst := exchanges[rng.Intn(len(exchanges))]
		callType := "local"
		if src != dst {
			callType = "long_distance"
		}
		plan := plans[rng.Intn(len(plans))]
		rate := rates[plan]
		if callType == "long_distance" {
			rate *= 2.5
		}
		peak := "peak"
		if hour >= 19 || hour < 7 {
			peak = "offpeak"
			rate *= 0.6
		}
		charge := math.Round(dur / 60 * rate)
		trunk := src + "-T" + strconv.Itoa(rng.Intn(3))
		b.MustAppendRow(hour, dur, f32(rate), charge, src, dst, trunk, plan, peak, callType)
	}
	return b.MustBuild()
}
