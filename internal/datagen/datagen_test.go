package datagen

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/table"
)

func TestCensusShape(t *testing.T) {
	tb := Census(500, 1)
	if tb.NumRows() != 500 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.NumCols() != 14 {
		t.Fatalf("cols = %d, want 14 (7 numeric + 7 categorical)", tb.NumCols())
	}
	numeric, categorical := kindCounts(tb)
	if numeric != 7 || categorical != 7 {
		t.Errorf("kinds = %d numeric, %d categorical; want 7/7", numeric, categorical)
	}
	// Small categorical domains, like CPS data.
	for i := 0; i < tb.NumCols(); i++ {
		if tb.Attr(i).Kind == table.Categorical {
			if d := tb.Col(i).DomainSize(); d > 10 {
				t.Errorf("attribute %q domain %d too large", tb.Attr(i).Name, d)
			}
		}
	}
}

func TestCensusDependencies(t *testing.T) {
	tb := Census(2000, 2)
	// weekly_earn ≈ hourly_pay × weekly_hours: correlation must be strong.
	pay := tb.ColByName("hourly_pay").Floats
	hours := tb.ColByName("weekly_hours").Floats
	earn := tb.ColByName("weekly_earn").Floats
	for i := range earn {
		want := pay[i] * hours[i]
		if math.Abs(earn[i]-want) > 1+0.01*want {
			t.Fatalf("row %d: earn %g != pay*hours %g", i, earn[i], want)
		}
	}
	// Recoded columns are exact functions of their sources.
	years := tb.ColByName("educ_years").Floats
	educ := tb.ColByName("education")
	ages := tb.ColByName("age").Floats
	groups := tb.ColByName("age_group")
	bands := tb.ColByName("income_band")
	emp := tb.ColByName("employment")
	for i := range years {
		if educ.Dict[educ.Codes[i]] != educationLevel(years[i]) {
			t.Fatalf("row %d: education inconsistent with years", i)
		}
		if groups.Dict[groups.Codes[i]] != ageGroup(ages[i]) {
			t.Fatalf("row %d: age_group inconsistent with age", i)
		}
		if bands.Dict[bands.Codes[i]] != incomeBand(earn[i]) {
			t.Fatalf("row %d: income_band inconsistent with earnings", i)
		}
		if emp.Dict[emp.Codes[i]] != employmentStatus(hours[i]) {
			t.Fatalf("row %d: employment inconsistent with hours", i)
		}
	}
}

func TestCorelShape(t *testing.T) {
	tb := Corel(500, 3)
	if tb.NumCols() != 32 {
		t.Fatalf("cols = %d, want 32", tb.NumCols())
	}
	numeric, categorical := kindCounts(tb)
	if numeric != 32 || categorical != 0 {
		t.Errorf("kinds = %d/%d, want 32 numeric only", numeric, categorical)
	}
	// Histogram rows: non-negative, roughly summing to 1.
	for r := 0; r < tb.NumRows(); r++ {
		sum := 0.0
		for c := 0; c < 32; c++ {
			v := tb.Float(r, c)
			if v < 0 {
				t.Fatalf("negative histogram value at (%d,%d)", r, c)
			}
			sum += v
		}
		// 1/64-grid rounding of 32 bins can drift the sum by a few
		// half-steps.
		if math.Abs(sum-1) > 0.08 {
			t.Fatalf("row %d sums to %g", r, sum)
		}
	}
}

func TestCorelHasClusterCorrelation(t *testing.T) {
	tb := Corel(1500, 4)
	// With latent clusters, some attribute pair must show clear mutual
	// information after discretization.
	best := 0.0
	codes := make([][]int, 12)
	bins := make([]int, 12)
	for c := 0; c < 12; c++ {
		d := stats.NewDiscretizer(tb.Col(c).Floats, 8)
		codes[c] = d.CodeAll(tb.Col(c).Floats)
		bins[c] = d.Bins()
	}
	for a := 0; a < 12; a++ {
		for c := a + 1; c < 12; c++ {
			if mi := stats.MutualInformation(codes[a], codes[c], bins[a], bins[c]); mi > best {
				best = mi
			}
		}
	}
	if best < 0.2 {
		t.Errorf("max pairwise MI %.3f; expected strong cluster correlation", best)
	}
}

func TestForestCoverShape(t *testing.T) {
	tb := ForestCover(500, 5)
	if tb.NumCols() != 54 {
		t.Fatalf("cols = %d, want 54 (10 numeric + 44 categorical)", tb.NumCols())
	}
	numeric, categorical := kindCounts(tb)
	if numeric != 10 || categorical != 44 {
		t.Errorf("kinds = %d/%d, want 10/44", numeric, categorical)
	}
	// One-hot wilderness block: exactly one "1" per row.
	for r := 0; r < tb.NumRows(); r++ {
		ones := 0
		for w := 0; w < 4; w++ {
			if tb.CatString(r, 14+w) == "1" {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("row %d has %d wilderness flags set", r, ones)
		}
		ones = 0
		for s := 0; s < 36; s++ {
			if tb.CatString(r, 18+s) == "1" {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("row %d has %d soil flags set", r, ones)
		}
	}
}

func TestForestCoverHillshadeDependency(t *testing.T) {
	tb := ForestCover(300, 6)
	// Hillshade is a deterministic function of aspect and slope.
	for r := 0; r < tb.NumRows(); r++ {
		aspect := tb.Float(r, 1)
		slope := tb.Float(r, 2)
		if got, want := tb.Float(r, 7), hillshade(aspect, slope, 180); got != want {
			t.Fatalf("row %d: hillshade_noon %g != %g", r, got, want)
		}
	}
}

func TestCDRDependencies(t *testing.T) {
	tb := CDR(500, 7)
	if tb.NumRows() != 500 || tb.NumCols() != 10 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	// call_type is a function of src/dst exchanges; peak of start_hour.
	for r := 0; r < tb.NumRows(); r++ {
		src, dst := tb.CatString(r, 4), tb.CatString(r, 5)
		want := "local"
		if src != dst {
			want = "long_distance"
		}
		if got := tb.CatString(r, 9); got != want {
			t.Fatalf("row %d: call_type %q, want %q", r, got, want)
		}
		hour := tb.Float(r, 0)
		wantPeak := "peak"
		if hour >= 19 || hour < 7 {
			wantPeak = "offpeak"
		}
		if got := tb.CatString(r, 8); got != wantPeak {
			t.Fatalf("row %d: peak %q, want %q", r, got, wantPeak)
		}
		// trunk is prefixed by the source exchange.
		if trunk := tb.CatString(r, 6); trunk[:3] != src {
			t.Fatalf("row %d: trunk %q does not match src %q", r, trunk, src)
		}
		// charge = duration/60 * rate, rounded.
		wantCharge := float64(float32(tb.Float(r, 1) / 60 * tb.Float(r, 2)))
		if got := tb.Float(r, 3); got < wantCharge-1 || got > wantCharge+1 {
			t.Fatalf("row %d: charge %g, want ≈%g", r, got, wantCharge)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	if !table.Equal(Census(100, 42), Census(100, 42)) {
		t.Error("Census not deterministic")
	}
	if !table.Equal(Corel(100, 42), Corel(100, 42)) {
		t.Error("Corel not deterministic")
	}
	if !table.Equal(ForestCover(100, 42), ForestCover(100, 42)) {
		t.Error("ForestCover not deterministic")
	}
	if !table.Equal(CDR(100, 42), CDR(100, 42)) {
		t.Error("CDR not deterministic")
	}
	if table.Equal(Census(100, 1), Census(100, 2)) {
		t.Error("different seeds produced identical Census tables")
	}
}

func kindCounts(tb *table.Table) (numeric, categorical int) {
	for i := 0; i < tb.NumCols(); i++ {
		if tb.Attr(i).Kind == table.Numeric {
			numeric++
		} else {
			categorical++
		}
	}
	return numeric, categorical
}
