// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) against the synthetic stand-in datasets: Figure 5
// (compression ratio vs error threshold × three datasets), Figures 6(a-c)
// (sample-size and running-time sweeps), Table 1 (CaRT-selection
// algorithms), and the ablations DESIGN.md calls out. Both the
// `spartanbench` command and the root testing.B benchmarks drive this
// package.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cart"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fascicle"
	"repro/internal/gzipref"
	"repro/internal/obs"
	"repro/internal/pzipref"
	"repro/internal/table"
)

// TraceSink, when non-nil, makes every RunSpartan call trace its pipeline
// and print the per-phase span tree there — `spartanbench -trace` wires
// it to stdout so the paper's running-time breakdowns (Figure 6b/6c,
// Table 1) can be decomposed per component. Set it before starting a run;
// the harness executes measurements sequentially.
var TraceSink io.Writer

// Dataset identifies one of the evaluation tables.
type Dataset string

// The paper's three datasets (synthetic stand-ins; see DESIGN.md §4).
const (
	Corel       Dataset = "corel"
	ForestCover Dataset = "forest"
	Census      Dataset = "census"
)

// AllDatasets lists the evaluation datasets in the paper's plot order.
var AllDatasets = []Dataset{Corel, ForestCover, Census}

// DefaultRows returns the row count used when the caller does not override
// it: scaled-down versions of the paper's table sizes that keep a full
// sweep under a minute per dataset. The paper used 68k (Corel), 581k
// (Forest-cover) and 676k (Census) rows; the ratio *shapes* are stable
// under this scaling (see EXPERIMENTS.md).
func (d Dataset) DefaultRows() int {
	switch d {
	case Corel:
		return 15000
	case ForestCover:
		return 25000
	default:
		return 30000
	}
}

// FascicleK returns the paper's best-performing compact-attribute count
// for the standalone fascicle baseline (§4.1): 6 for Corel, 36 for
// Forest-cover, 9 for Census.
func (d Dataset) FascicleK() int {
	switch d {
	case Corel:
		return 6
	case ForestCover:
		return 36
	default:
		return 9
	}
}

// Load generates the dataset with n rows (0 = DefaultRows).
func (d Dataset) Load(n int, seed int64) (*table.Table, error) {
	if n <= 0 {
		n = d.DefaultRows()
	}
	switch d {
	case Corel:
		return datagen.Corel(n, seed), nil
	case ForestCover:
		return datagen.ForestCover(n, seed), nil
	case Census:
		return datagen.Census(n, seed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", d)
	}
}

// CompressorResult is one (algorithm, dataset, tolerance) measurement.
type CompressorResult struct {
	Bytes   int
	Ratio   float64
	Elapsed time.Duration
}

// Measurement bundles the three §4.1 compressors on one configuration.
type Measurement struct {
	Dataset   Dataset
	Rows      int
	Tolerance float64 // numeric error threshold as fraction of range
	Gzip      CompressorResult
	Fascicles CompressorResult
	Spartan   CompressorResult
	Stats     *core.Stats // SPARTAN's detailed stats
}

// RunGzip measures the gzip baseline.
func RunGzip(t *table.Table) (CompressorResult, error) {
	start := time.Now()
	data, err := gzipref.Compress(t)
	if err != nil {
		return CompressorResult{}, err
	}
	return result(t, len(data), start), nil
}

// RunFascicles measures the standalone fascicle baseline with the paper's
// per-dataset parameters.
func RunFascicles(t *table.Table, d Dataset, frac float64) (CompressorResult, error) {
	start := time.Now()
	widths := make([]float64, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		if t.Attr(i).Kind == table.Numeric {
			widths[i] = frac * t.Col(i).Range()
		}
	}
	minSize := t.NumRows() / 10000
	if minSize < 2 {
		minSize = 2
	}
	data, err := fascicle.Compress(t, fascicle.Params{
		K:            d.FascicleK(),
		MaxFascicles: 500,
		MinSize:      minSize,
		Widths:       widths,
	}, true)
	if err != nil {
		return CompressorResult{}, err
	}
	return result(t, len(data), start), nil
}

// RunPzip measures the pzip-style column-grouping baseline (lossless;
// the paper's reference [3]).
func RunPzip(t *table.Table) (CompressorResult, error) {
	start := time.Now()
	data, err := pzipref.Compress(t)
	if err != nil {
		return CompressorResult{}, err
	}
	return result(t, len(data), start), nil
}

// RunSpartan measures SPARTAN with the given options, returning both the
// measurement and the detailed stats. With TraceSink set, the run is
// traced and its span tree printed.
func RunSpartan(t *table.Table, opts core.Options) (CompressorResult, *core.Stats, error) {
	start := time.Now()
	if TraceSink != nil && opts.Trace == nil {
		opts.Trace = obs.NewTrace(fmt.Sprintf("spartan rows=%d", t.NumRows()))
		// Printed trees carry per-phase allocation attribution alongside
		// durations (see obs.Span.Resources).
		opts.Trace.CaptureResources()
	}
	var counter countingWriter
	stats, err := core.Compress(&counter, t, opts)
	if err != nil {
		return CompressorResult{}, nil, err
	}
	if TraceSink != nil {
		opts.Trace.WriteTree(TraceSink)
	}
	return result(t, counter.n, start), stats, nil
}

type countingWriter struct{ n int }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

func result(t *table.Table, bytes int, start time.Time) CompressorResult {
	return CompressorResult{
		Bytes:   bytes,
		Ratio:   float64(bytes) / float64(t.RawSizeBytes()),
		Elapsed: time.Since(start),
	}
}

// Measure runs all three compressors on one configuration.
func Measure(d Dataset, rows int, frac float64, seed int64) (*Measurement, error) {
	t, err := d.Load(rows, seed)
	if err != nil {
		return nil, err
	}
	return MeasureTable(t, d, frac)
}

// MeasureTable is Measure on a pre-generated table (so sweeps can reuse
// one generation).
func MeasureTable(t *table.Table, d Dataset, frac float64) (*Measurement, error) {
	m := &Measurement{Dataset: d, Rows: t.NumRows(), Tolerance: frac}
	var err error
	if m.Gzip, err = RunGzip(t); err != nil {
		return nil, fmt.Errorf("gzip on %s: %w", d, err)
	}
	if m.Fascicles, err = RunFascicles(t, d, frac); err != nil {
		return nil, fmt.Errorf("fascicles on %s: %w", d, err)
	}
	opts := core.Options{Tolerances: table.UniformTolerances(t, frac, 0)}
	if m.Spartan, m.Stats, err = RunSpartan(t, opts); err != nil {
		return nil, fmt.Errorf("spartan on %s: %w", d, err)
	}
	return m, nil
}

// Thresholds is the error-threshold sweep of Figure 5 (fractions of each
// numeric attribute's range).
var Thresholds = []float64{0.005, 0.01, 0.025, 0.05, 0.10}

// Fig5 regenerates one panel of Figure 5: compression ratio vs error
// threshold for the three compressors on one dataset. Progress lines go
// to w if non-nil.
func Fig5(d Dataset, rows int, seed int64, w io.Writer) ([]*Measurement, error) {
	t, err := d.Load(rows, seed)
	if err != nil {
		return nil, err
	}
	var out []*Measurement
	for _, frac := range Thresholds {
		m, err := MeasureTable(t, d, frac)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		if w != nil {
			fmt.Fprintf(w, "%-8s e=%5.1f%%  gzip %.3f  fascicles %.3f  spartan %.3f\n",
				d, frac*100, m.Gzip.Ratio, m.Fascicles.Ratio, m.Spartan.Ratio)
		}
	}
	return out, nil
}

// SampleSizes is the Figure 6(a)/6(c) sweep (bytes).
var SampleSizes = []int{25 << 10, 50 << 10, 100 << 10, 200 << 10}

// SamplePoint is one Figure 6(a)/6(c) measurement.
type SamplePoint struct {
	SampleBytes int
	Ratio       float64
	Elapsed     time.Duration
	Stats       *core.Stats
}

// Fig6a regenerates Figure 6(a): SPARTAN's compression ratio vs sample
// size on Forest-cover (plus gzip/fascicle reference lines via Measure).
func Fig6a(d Dataset, rows int, frac float64, seed int64, w io.Writer) ([]SamplePoint, error) {
	t, err := d.Load(rows, seed)
	if err != nil {
		return nil, err
	}
	var out []SamplePoint
	for _, sb := range SampleSizes {
		opts := core.Options{
			Tolerances:  table.UniformTolerances(t, frac, 0),
			SampleBytes: sb,
		}
		res, stats, err := RunSpartan(t, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, SamplePoint{SampleBytes: sb, Ratio: res.Ratio, Elapsed: res.Elapsed, Stats: stats})
		if w != nil {
			fmt.Fprintf(w, "%-8s sample=%3dKB  ratio %.3f  time %v\n",
				d, sb>>10, res.Ratio, res.Elapsed.Round(time.Millisecond))
		}
	}
	return out, nil
}

// TimePoint is one Figure 6(b) measurement.
type TimePoint struct {
	Tolerance float64
	Elapsed   time.Duration
	Stats     *core.Stats
}

// Fig6b regenerates Figure 6(b): SPARTAN running time vs error threshold.
func Fig6b(d Dataset, rows int, seed int64, w io.Writer) ([]TimePoint, error) {
	t, err := d.Load(rows, seed)
	if err != nil {
		return nil, err
	}
	var out []TimePoint
	for _, frac := range Thresholds {
		opts := core.Options{Tolerances: table.UniformTolerances(t, frac, 0)}
		res, stats, err := RunSpartan(t, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, TimePoint{Tolerance: frac, Elapsed: res.Elapsed, Stats: stats})
		if w != nil {
			fmt.Fprintf(w, "%-8s e=%5.1f%%  time %v (carts %v, outliers %v)\n",
				d, frac*100, res.Elapsed.Round(time.Millisecond),
				stats.Timings.CaRTSelection.Round(time.Millisecond),
				stats.Timings.OutlierScan.Round(time.Millisecond))
		}
	}
	return out, nil
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Dataset    Dataset
	Strategy   core.SelectionStrategy
	Ratio      float64
	Elapsed    time.Duration
	CartsBuilt int
}

// Table1Strategies lists the three §4.2 selection configurations.
var Table1Strategies = []core.SelectionStrategy{
	core.SelectGreedy, core.SelectWMISParents, core.SelectWMISMarkov,
}

// Table1 regenerates Table 1: compression ratio and running time per
// CaRT-selection algorithm per dataset, at the default 1% tolerance.
func Table1(datasets []Dataset, rows int, seed int64, w io.Writer) ([]Table1Row, error) {
	var out []Table1Row
	for _, d := range datasets {
		t, err := d.Load(rows, seed)
		if err != nil {
			return nil, err
		}
		for _, strat := range Table1Strategies {
			opts := core.Options{
				Tolerances: table.UniformTolerances(t, 0.01, 0),
				Selection:  strat,
			}
			res, stats, err := RunSpartan(t, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, Table1Row{
				Dataset: d, Strategy: strat, Ratio: res.Ratio,
				Elapsed: res.Elapsed, CartsBuilt: stats.CartsBuilt,
			})
			if w != nil {
				fmt.Fprintf(w, "%-8s %-13s ratio %.3f  time %8v  carts %d\n",
					d, strat, res.Ratio, res.Elapsed.Round(time.Millisecond), stats.CartsBuilt)
			}
		}
	}
	return out, nil
}

// LosslessRow is one ē=0 comparison measurement.
type LosslessRow struct {
	Dataset Dataset
	Gzip    CompressorResult
	Pzip    CompressorResult
	Spartan CompressorResult
}

// Lossless compares the fully lossless compressors: sorted gzip, the
// pzip-style column-grouping baseline, and SPARTAN with all tolerances
// zero (where exactly-predictable columns still vanish into CaRTs).
func Lossless(d Dataset, rows int, seed int64, w io.Writer) (*LosslessRow, error) {
	t, err := d.Load(rows, seed)
	if err != nil {
		return nil, err
	}
	out := &LosslessRow{Dataset: d}
	if out.Gzip, err = RunGzip(t); err != nil {
		return nil, err
	}
	if out.Pzip, err = RunPzip(t); err != nil {
		return nil, err
	}
	if out.Spartan, _, err = RunSpartan(t, core.Options{}); err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "%-8s gzip %.3f  pzip %.3f  spartan %.3f\n",
			d, out.Gzip.Ratio, out.Pzip.Ratio, out.Spartan.Ratio)
	}
	return out, nil
}

// AblationRow is one design-choice ablation measurement.
type AblationRow struct {
	Name    string
	Ratio   float64
	Elapsed time.Duration
}

// Ablations measures SPARTAN's design knobs on one dataset at the default
// tolerance: integrated vs post pruning, RowAggregator on/off.
func Ablations(d Dataset, rows int, seed int64, w io.Writer) ([]AblationRow, error) {
	t, err := d.Load(rows, seed)
	if err != nil {
		return nil, err
	}
	tol := table.UniformTolerances(t, 0.01, 0)
	configs := []struct {
		name string
		opts core.Options
	}{
		{"default (integrated prune, rowagg on)", core.Options{Tolerances: tol}},
		{"prune after building", core.Options{Tolerances: tol, Prune: cart.PruneAfter}},
		{"row aggregation off", core.Options{Tolerances: tol, DisableRowAggregation: true}},
		{"greedy selection", core.Options{Tolerances: tol, Selection: core.SelectGreedy}},
	}
	var out []AblationRow
	for _, cfg := range configs {
		res, _, err := RunSpartan(t, cfg.opts)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{Name: cfg.name, Ratio: res.Ratio, Elapsed: res.Elapsed})
		if w != nil {
			fmt.Fprintf(w, "%-40s ratio %.3f  time %v\n",
				cfg.name, res.Ratio, res.Elapsed.Round(time.Millisecond))
		}
	}
	return out, nil
}
