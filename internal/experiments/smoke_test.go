package experiments

import (
	"testing"
	"time"
)

// Small-row smoke tests keep the suite fast; the real sweeps run through
// cmd/spartanbench and the root benchmarks.

func TestMeasureSmall(t *testing.T) {
	for _, d := range AllDatasets {
		m, err := Measure(d, 2000, 0.01, 1)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		for name, r := range map[string]CompressorResult{
			"gzip": m.Gzip, "fascicles": m.Fascicles, "spartan": m.Spartan,
		} {
			if r.Bytes <= 0 || r.Ratio <= 0 {
				t.Errorf("%s/%s: empty result %+v", d, name, r)
			}
			if r.Ratio >= 1.2 {
				t.Errorf("%s/%s: ratio %.3f worse than raw", d, name, r.Ratio)
			}
		}
		if m.Stats == nil || len(m.Stats.Predicted)+len(m.Stats.Materialized) == 0 {
			t.Errorf("%s: missing SPARTAN stats", d)
		}
	}
}

func TestSpartanBeatsGzipOnCorel(t *testing.T) {
	// The paper's headline: on the all-numeric Corel data at 5-10%
	// tolerance SPARTAN wins by a large factor.
	m, err := Measure(Corel, 4000, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spartan.Ratio >= m.Gzip.Ratio {
		t.Errorf("spartan %.3f not better than gzip %.3f on Corel at 5%%",
			m.Spartan.Ratio, m.Gzip.Ratio)
	}
}

func TestTable1SmallRun(t *testing.T) {
	rows, err := Table1([]Dataset{Census}, 2000, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table1Strategies) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Table1Strategies))
	}
	for _, r := range rows {
		if r.Ratio <= 0 || r.Elapsed <= 0 {
			t.Errorf("empty row %+v", r)
		}
	}
}

func TestFig6aSmallRun(t *testing.T) {
	pts, err := Fig6a(Census, 3000, 0.01, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(SampleSizes) {
		t.Fatalf("got %d points, want %d", len(pts), len(SampleSizes))
	}
	for _, p := range pts {
		if p.Ratio <= 0 || p.Elapsed <= 0 {
			t.Errorf("empty point %+v", p)
		}
	}
}

func TestAblationsSmallRun(t *testing.T) {
	rows, err := Ablations(Census, 2000, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d ablations, want 4", len(rows))
	}
}

func TestDatasetHelpers(t *testing.T) {
	if _, err := Dataset("nope").Load(10, 1); err == nil {
		t.Error("Load accepted unknown dataset")
	}
	for _, d := range AllDatasets {
		if d.DefaultRows() <= 0 || d.FascicleK() <= 0 {
			t.Errorf("%s: bad defaults", d)
		}
	}
	// Elapsed fields are real durations.
	m, err := Measure(Census, 500, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spartan.Elapsed <= 0 || m.Spartan.Elapsed > time.Minute {
		t.Errorf("implausible elapsed %v", m.Spartan.Elapsed)
	}
}

func TestLosslessSmallRun(t *testing.T) {
	row, err := Lossless(Census, 1500, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]CompressorResult{
		"gzip": row.Gzip, "pzip": row.Pzip, "spartan": row.Spartan,
	} {
		if r.Bytes <= 0 || r.Ratio <= 0 || r.Ratio >= 1 {
			t.Errorf("%s: implausible result %+v", name, r)
		}
	}
}

func TestFig5SmallRun(t *testing.T) {
	ms, err := Fig5(Census, 1200, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(Thresholds) {
		t.Fatalf("got %d measurements, want %d", len(ms), len(Thresholds))
	}
	// SPARTAN's ratio must be non-increasing-ish in the tolerance (allow
	// small noise).
	first, last := ms[0].Spartan.Ratio, ms[len(ms)-1].Spartan.Ratio
	if last > first*1.1 {
		t.Errorf("spartan ratio grew with tolerance: %.3f -> %.3f", first, last)
	}
}

func TestFig6bSmallRun(t *testing.T) {
	pts, err := Fig6b(Census, 1200, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Thresholds) {
		t.Fatalf("got %d points, want %d", len(pts), len(Thresholds))
	}
	for _, p := range pts {
		if p.Elapsed <= 0 || p.Stats == nil {
			t.Errorf("empty point %+v", p)
		}
	}
}
