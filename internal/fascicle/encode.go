package fascicle

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/table"
)

// Standalone fascicle compression (the baseline of paper §4.1): the table
// is stored as a set of fascicles (compact attributes once per fascicle,
// other attributes per row) plus leftover rows. Like the paper's
// treatment, the table is an unordered multiset — decompression returns
// rows grouped by fascicle, not in the original order.

const fascicleMagic = "SPFAS1\n"

// Compress clusters the table and encodes the clustering. When gzipPayload
// is true the encoded body is additionally deflated, which is how the
// RowAggregator block inside SPARTAN's codec is stored.
func Compress(t *table.Table, p Params, gzipPayload bool) ([]byte, error) {
	c, err := Cluster(t, p)
	if err != nil {
		return nil, err
	}
	return c.Encode(t, gzipPayload)
}

// Encode serializes the clustering against its source table.
func (c *Clustering) Encode(t *table.Table, gzipPayload bool) ([]byte, error) {
	var body bytes.Buffer
	bw := bufio.NewWriter(&body)
	if err := writeSchema(bw, t); err != nil {
		return nil, err
	}
	if err := putUvarint(bw, uint64(len(c.Fascicles))); err != nil {
		return nil, err
	}
	for i := range c.Fascicles {
		if err := encodeFascicle(bw, t, &c.Fascicles[i]); err != nil {
			return nil, err
		}
	}
	if err := putUvarint(bw, uint64(len(c.Leftover))); err != nil {
		return nil, err
	}
	for _, r := range c.Leftover {
		if err := writeRow(bw, t, r, nil); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}

	var out bytes.Buffer
	out.WriteString(fascicleMagic)
	if gzipPayload {
		out.WriteByte(1)
		zw := gzip.NewWriter(&out)
		if _, err := zw.Write(body.Bytes()); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
	} else {
		out.WriteByte(0)
		out.Write(body.Bytes())
	}
	return out.Bytes(), nil
}

func encodeFascicle(bw *bufio.Writer, t *table.Table, f *Fascicle) error {
	if err := putUvarint(bw, uint64(len(f.CompactAttrs))); err != nil {
		return err
	}
	for j, attr := range f.CompactAttrs {
		if err := putUvarint(bw, uint64(attr)); err != nil {
			return err
		}
		if t.Attr(attr).Kind == table.Numeric {
			if err := putFloat64(bw, f.NumReps[j]); err != nil {
				return err
			}
		} else if err := putUvarint(bw, uint64(f.CatReps[j])); err != nil {
			return err
		}
	}
	if err := putUvarint(bw, uint64(len(f.Rows))); err != nil {
		return err
	}
	compact := make(map[int]bool, len(f.CompactAttrs))
	for _, a := range f.CompactAttrs {
		compact[a] = true
	}
	for _, r := range f.Rows {
		if err := writeRow(bw, t, r, compact); err != nil {
			return err
		}
	}
	return nil
}

// writeRow writes the row's values for all attributes not in skip. Numeric
// cells are 4-byte floats (the raw record width), categorical cells are
// uvarint codes.
func writeRow(bw *bufio.Writer, t *table.Table, row int, skip map[int]bool) error {
	for a := 0; a < t.NumCols(); a++ {
		if skip[a] {
			continue
		}
		if t.Attr(a).Kind == table.Numeric {
			if err := putFloat32(bw, t.Float(row, a)); err != nil {
				return err
			}
		} else if err := putUvarint(bw, uint64(t.Code(row, a))); err != nil {
			return err
		}
	}
	return nil
}

// Decompress decodes a stream produced by Compress/Encode. Row order
// follows fascicle grouping, not the original table order; values of
// compact attributes are the fascicle representatives.
func Decompress(data []byte) (*table.Table, error) {
	if len(data) < len(fascicleMagic)+1 || string(data[:len(fascicleMagic)]) != fascicleMagic {
		return nil, fmt.Errorf("fascicle: bad magic")
	}
	rest := data[len(fascicleMagic):]
	var body io.Reader = bytes.NewReader(rest[1:])
	if rest[0] == 1 {
		zr, err := gzip.NewReader(body)
		if err != nil {
			return nil, fmt.Errorf("fascicle: opening gzip payload: %w", err)
		}
		defer zr.Close()
		body = zr
	}
	br := bufio.NewReader(body)
	schema, dicts, err := readSchema(br)
	if err != nil {
		return nil, err
	}
	ncols := len(schema)
	cols := make([]*table.Column, ncols)
	for i := range cols {
		cols[i] = &table.Column{Kind: schema[i].Kind, Dict: dicts[i]}
	}
	appendCell := func(a int, num float64, code int64) error {
		if schema[a].Kind == table.Numeric {
			cols[a].Floats = append(cols[a].Floats, num)
			return nil
		}
		if code < 0 || int(code) >= len(dicts[a]) {
			return fmt.Errorf("fascicle: code %d outside dictionary of %q", code, schema[a].Name)
		}
		cols[a].Codes = append(cols[a].Codes, int32(code))
		return nil
	}
	readRow := func(skip map[int]bool, reps map[int][2]any) error {
		for a := 0; a < ncols; a++ {
			if skip[a] {
				rep := reps[a]
				if err := appendCell(a, rep[0].(float64), rep[1].(int64)); err != nil {
					return err
				}
				continue
			}
			if schema[a].Kind == table.Numeric {
				v, err := readFloat32(br)
				if err != nil {
					return err
				}
				if err := appendCell(a, v, 0); err != nil {
					return err
				}
			} else {
				c, err := binary.ReadUvarint(br)
				if err != nil {
					return err
				}
				if err := appendCell(a, 0, int64(c)); err != nil {
					return err
				}
			}
		}
		return nil
	}

	nfas, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fascicle: reading fascicle count: %w", err)
	}
	if nfas > 1<<22 {
		return nil, fmt.Errorf("fascicle: implausible fascicle count %d", nfas)
	}
	// Cumulative row cap bounds work even against deflate bombs.
	const maxRows = 1 << 26
	totalRows := uint64(0)
	for i := uint64(0); i < nfas; i++ {
		k, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if k > uint64(ncols) {
			return nil, fmt.Errorf("fascicle: %d compact attributes for %d columns", k, ncols)
		}
		skip := make(map[int]bool, int(k))
		reps := make(map[int][2]any, int(k))
		for j := uint64(0); j < k; j++ {
			attrU, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			attr := int(attrU)
			if attr >= ncols {
				return nil, fmt.Errorf("fascicle: compact attribute %d out of range", attr)
			}
			skip[attr] = true
			if schema[attr].Kind == table.Numeric {
				v, err := readFloat64(br)
				if err != nil {
					return nil, err
				}
				reps[attr] = [2]any{v, int64(0)}
			} else {
				c, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				reps[attr] = [2]any{0.0, int64(c)}
			}
		}
		rows, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		totalRows += rows
		if totalRows > maxRows {
			return nil, fmt.Errorf("fascicle: more than %d rows in stream", maxRows)
		}
		for r := uint64(0); r < rows; r++ {
			if err := readRow(skip, reps); err != nil {
				return nil, err
			}
		}
	}
	nleft, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fascicle: reading leftover count: %w", err)
	}
	if totalRows+nleft > maxRows {
		return nil, fmt.Errorf("fascicle: more than %d rows in stream", maxRows)
	}
	for r := uint64(0); r < nleft; r++ {
		if err := readRow(nil, nil); err != nil {
			return nil, err
		}
	}
	return table.New(schema, cols)
}

// --- shared low-level helpers ---

func writeSchema(bw *bufio.Writer, t *table.Table) error {
	if err := putUvarint(bw, uint64(t.NumCols())); err != nil {
		return err
	}
	for i := 0; i < t.NumCols(); i++ {
		a := t.Attr(i)
		if err := putString(bw, a.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(a.Kind)); err != nil {
			return err
		}
		if a.Kind == table.Categorical {
			dict := t.Col(i).Dict
			if err := putUvarint(bw, uint64(len(dict))); err != nil {
				return err
			}
			for _, s := range dict {
				if err := putString(bw, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func readSchema(br *bufio.Reader) (table.Schema, [][]string, error) {
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("fascicle: reading column count: %w", err)
	}
	if ncols == 0 || ncols > 1<<16 {
		return nil, nil, fmt.Errorf("fascicle: implausible column count %d", ncols)
	}
	schema := make(table.Schema, ncols)
	dicts := make([][]string, ncols)
	for i := range schema {
		name, err := getString(br)
		if err != nil {
			return nil, nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, nil, err
		}
		kind := table.Kind(kb)
		if kind != table.Numeric && kind != table.Categorical {
			return nil, nil, fmt.Errorf("fascicle: unknown kind %d", kb)
		}
		schema[i] = table.Attribute{Name: name, Kind: kind}
		if kind == table.Categorical {
			dlen, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			if dlen > 1<<22 {
				return nil, nil, fmt.Errorf("fascicle: implausible dictionary size %d", dlen)
			}
			dict := make([]string, 0, minInt(int(dlen), 1<<12))
			for d := uint64(0); d < dlen; d++ {
				s, err := getString(br)
				if err != nil {
					return nil, nil, err
				}
				dict = append(dict, s)
			}
			dicts[i] = dict
		}
	}
	return schema, dicts, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func putUvarint(bw *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := bw.Write(buf[:n])
	return err
}

func putString(bw *bufio.Writer, s string) error {
	if err := putUvarint(bw, uint64(len(s))); err != nil {
		return err
	}
	_, err := bw.WriteString(s)
	return err
}

func getString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("fascicle: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func putFloat64(bw *bufio.Writer, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := bw.Write(buf[:])
	return err
}

func readFloat64(br *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func putFloat32(bw *bufio.Writer, v float64) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
	_, err := bw.Write(buf[:])
	return err
}

func readFloat32(br *bufio.Reader) (float64, error) {
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))), nil
}
