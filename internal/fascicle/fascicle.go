// Package fascicle implements row-wise semantic compression with fascicles
// (Jagadish, Madar, Ng, VLDB 1999), the technique SPARTAN uses in its
// RowAggregator component (paper §3.4) and compares against as a baseline
// (paper §4).
//
// A fascicle is a set of rows that agree, within a compactness tolerance,
// on k "compact" attributes: a numeric attribute is compact in a row set
// when its value range has width at most 2e (so the range midpoint is
// within e of every member); a categorical attribute is compact when all
// rows share one value. Compact attributes are stored once per fascicle.
//
// For SPARTAN's RowAggregator the paper strengthens compactness: a compact
// numeric attribute's range [x', x”] must not straddle any CaRT split
// value v (either x' > v or x” ≤ v), which guarantees the quantized
// predictor values traverse exactly the same tree paths as the originals.
// This package implements that rule via the SplitValues option.
//
// The lattice search of the original Single-k algorithm is replaced by a
// deterministic seeded greedy growth (DESIGN.md §4): take the first
// unassigned row as seed, find for every attribute the rows that fit a
// compactness window around the seed, keep the k best-populated
// attributes, and emit the rows matching all k.
package fascicle

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/floats"
	"repro/internal/table"
)

// Params configures fascicle computation, mirroring the knobs of the
// Single-k algorithm.
type Params struct {
	// K is the number of compact attributes per fascicle. Zero defaults to
	// two-thirds of the attribute count (the paper's RowAggregator
	// setting).
	K int
	// MaxFascicles bounds the number of fascicles (the paper's P,
	// default 500).
	MaxFascicles int
	// MinSize is the minimum fascicle row count (the paper's m); smaller
	// candidate groups stay uncompressed. Default max(2, 0.01% of rows).
	MinSize int
	// Widths holds the per-attribute compactness tolerance: for a numeric
	// attribute i the maximum allowed value range is 2·Widths[i] (the paper
	// sets the compactness tolerance to twice the error tolerance, i.e.
	// Widths[i] = eᵢ). Categorical attributes are compact only when equal,
	// regardless of width; their entry must be 0.
	Widths []float64
	// SplitValues optionally lists, per attribute, the CaRT split values
	// that compact ranges must not straddle (RowAggregator mode).
	SplitValues [][]float64
}

func (p Params) withDefaults(t *table.Table) (Params, error) {
	if len(p.Widths) != t.NumCols() {
		return p, fmt.Errorf("fascicle: %d widths for %d attributes", len(p.Widths), t.NumCols())
	}
	if p.K <= 0 {
		p.K = 2 * t.NumCols() / 3
		if p.K < 1 {
			p.K = 1
		}
	}
	if p.K > t.NumCols() {
		p.K = t.NumCols()
	}
	if p.MaxFascicles <= 0 {
		p.MaxFascicles = 500
	}
	if p.MinSize <= 0 {
		p.MinSize = t.NumRows() / 10000
		if p.MinSize < 2 {
			p.MinSize = 2
		}
	}
	if p.SplitValues != nil && len(p.SplitValues) != t.NumCols() {
		return p, fmt.Errorf("fascicle: %d split-value lists for %d attributes", len(p.SplitValues), t.NumCols())
	}
	return p, nil
}

// Fascicle is one row cluster: Rows lists the member row indices (in
// increasing order), CompactAttrs the attributes stored once, and Reps the
// representative value for each compact attribute (numeric midpoint or
// categorical code, by attribute kind).
type Fascicle struct {
	Rows         []int
	CompactAttrs []int
	NumReps      []float64 // representative per compact numeric attribute
	CatReps      []int32   // representative per compact categorical attribute
}

// repFor returns the representative for compact attribute position j.
func (f *Fascicle) repFor(t *table.Table, j int) (float64, int32) {
	attr := f.CompactAttrs[j]
	if t.Attr(attr).Kind == table.Numeric {
		return f.NumReps[j], 0
	}
	return 0, f.CatReps[j]
}

// Clustering is the result of fascicle detection over a table.
type Clustering struct {
	Fascicles []Fascicle
	// Leftover lists rows assigned to no fascicle; they are stored
	// verbatim.
	Leftover []int
	params   Params
}

// Cluster detects fascicles greedily. The result is deterministic for a
// given table and parameters. Complexity is O(n·cols) for index
// construction plus near-O(output) per fascicle: windows are counted by
// binary search on per-column sorted indexes, and candidate rows are
// extracted only from the sparsest chosen attribute.
func Cluster(t *table.Table, p Params) (*Clustering, error) {
	return ClusterContext(context.Background(), t, p)
}

// ClusterContext is Cluster with cancellation: ctx is checked before each
// seed's growth attempt, so a cancel abandons the clustering within one
// fascicle and returns the wrapped context error.
func ClusterContext(ctx context.Context, t *table.Table, p Params) (*Clustering, error) {
	p, err := p.withDefaults(t)
	if err != nil {
		return nil, err
	}
	n := t.NumRows()
	idx := buildIndex(t)
	assigned := make([]bool, n)
	fascicles := make([]Fascicle, 0, p.MaxFascicles)

	// Seeds that fail to grow are skipped permanently; cap total attempts
	// so degenerate tables (nothing clusters) stay linear.
	maxTries := 4*p.MaxFascicles + 64
	seed, tries := 0, 0
	for len(fascicles) < p.MaxFascicles && tries < maxTries {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fascicle: clustering cancelled: %w", err)
		}
		for seed < n && assigned[seed] {
			seed++
		}
		if seed >= n {
			break
		}
		tries++
		f, ok := growFascicle(t, p, idx, seed, assigned)
		if !ok {
			seed++ // this seed stays a leftover unless a later fascicle absorbs it
			continue
		}
		for _, r := range f.Rows {
			assigned[r] = true
		}
		fascicles = append(fascicles, f)
	}
	free := 0
	for _, done := range assigned {
		if !done {
			free++
		}
	}
	leftover := make([]int, 0, free)
	for r := 0; r < n; r++ {
		if !assigned[r] {
			leftover = append(leftover, r)
		}
	}
	return &Clustering{Fascicles: fascicles, Leftover: leftover, params: p}, nil
}

// colIndex accelerates window membership queries.
type colIndex struct {
	// numeric: rows sorted by value.
	sortedVals []float64
	sortedRows []int
	// categorical: rows per code.
	buckets map[int32][]int
}

func buildIndex(t *table.Table) []colIndex {
	idx := make([]colIndex, t.NumCols())
	for a := 0; a < t.NumCols(); a++ {
		col := t.Col(a)
		if col.Kind == table.Numeric {
			order := make([]int, len(col.Floats))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(i, j int) bool {
				return col.Floats[order[i]] < col.Floats[order[j]]
			})
			vals := make([]float64, len(order))
			for i, r := range order {
				vals[i] = col.Floats[r]
			}
			idx[a] = colIndex{sortedVals: vals, sortedRows: order}
			continue
		}
		buckets := make(map[int32][]int, len(col.Dict))
		for r, c := range col.Codes {
			buckets[c] = append(buckets[c], r)
		}
		idx[a] = colIndex{buckets: buckets}
	}
	return idx
}

// countRange returns the number of rows with value in [lo, hi].
func (ci *colIndex) countRange(lo, hi float64) int {
	a := sort.SearchFloat64s(ci.sortedVals, lo)
	b := sort.Search(len(ci.sortedVals), func(i int) bool { return ci.sortedVals[i] > hi })
	return b - a
}

// rowsInRange appends the unassigned rows with value in [lo, hi].
func (ci *colIndex) rowsInRange(lo, hi float64, assigned []bool, out []int) []int {
	a := sort.SearchFloat64s(ci.sortedVals, lo)
	b := sort.Search(len(ci.sortedVals), func(i int) bool { return ci.sortedVals[i] > hi })
	for i := a; i < b; i++ {
		if r := ci.sortedRows[i]; !assigned[r] {
			out = append(out, r)
		}
	}
	return out
}

// attrMatch records, for one attribute, the compactness window around the
// current seed and an (index-estimated) population count.
type attrMatch struct {
	attr  int
	count int     // estimated rows in window (may include assigned rows)
	lo    float64 // numeric window bounds
	hi    float64
	isCat bool
	seedC int32 // seed's code (categorical attributes)
}

// growFascicle builds the candidate fascicle seeded at row seed and
// reports whether it meets the minimum size.
func growFascicle(t *table.Table, p Params, idx []colIndex, seed int, assigned []bool) (Fascicle, bool) {
	ncols := t.NumCols()
	matches := make([]attrMatch, 0, ncols)
	for a := 0; a < ncols; a++ {
		col := t.Col(a)
		am := attrMatch{attr: a}
		if col.Kind == table.Numeric {
			// The compactness window may sit anywhere as long as it has
			// width ≤ 2·w and contains the seed; try the three natural
			// anchorings and keep the most populated one. Counts come from
			// the sorted index and may include already-assigned rows — a
			// deliberate approximation that keeps scoring O(log n).
			s, w := t.Float(seed, a), p.Widths[a]
			splits := splitsFor(p, a)
			am.count = -1
			for _, anchor := range [3][2]float64{{s - 2*w, s}, {s - w, s + w}, {s, s + 2*w}} {
				lo, hi := clampWindow(s, anchor[0], anchor[1], splits)
				if count := idx[a].countRange(lo, hi); count > am.count {
					am.count = count
					am.lo, am.hi = lo, hi
				}
			}
		} else {
			am.isCat = true
			am.seedC = col.Codes[seed]
			am.count = len(idx[a].buckets[am.seedC])
		}
		matches = append(matches, am)
	}
	if len(matches) < p.K {
		return Fascicle{}, false
	}
	// Keep the K attributes with the highest estimated population.
	sort.SliceStable(matches, func(i, j int) bool {
		return matches[i].count > matches[j].count
	})
	chosen := matches[:p.K]

	// Extract candidate rows from the sparsest chosen attribute, then
	// filter by the remaining constraints.
	sparse := chosen[0]
	for _, am := range chosen[1:] {
		if am.count < sparse.count {
			sparse = am
		}
	}
	var cands []int
	if sparse.isCat {
		bucket := idx[sparse.attr].buckets[sparse.seedC]
		cands = make([]int, 0, len(bucket))
		for _, r := range bucket {
			if !assigned[r] {
				cands = append(cands, r)
			}
		}
	} else {
		cands = idx[sparse.attr].rowsInRange(sparse.lo, sparse.hi, assigned, nil)
	}
	rows := cands[:0]
	for _, r := range cands {
		ok := true
		for _, am := range chosen {
			if am.attr == sparse.attr {
				continue
			}
			if am.isCat {
				if t.Code(r, am.attr) != am.seedC {
					ok = false
					break
				}
			} else if v := t.Float(r, am.attr); v < am.lo || v > am.hi {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, r)
		}
	}
	if len(rows) < p.MinSize {
		return Fascicle{}, false
	}
	sort.Ints(rows)
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].attr < chosen[j].attr })

	// Representatives: the most frequent member value (ties broken low).
	// Using an existing domain value — rather than the range midpoint —
	// means quantization never introduces new distinct values, so the
	// downstream dictionary coder only ever benefits. Members farther than
	// the width from the representative are dropped below, keeping the
	// error bound valid for every member by construction. (Values are
	// float32-exact already, so no wire-format rounding applies.)
	reps := make([]float64, len(chosen))
	for ci, am := range chosen {
		if am.isCat {
			continue
		}
		col := t.Col(am.attr)
		counts := make(map[float64]int, 16)
		for _, r := range rows {
			counts[col.Floats[r]]++
		}
		bestV, bestC := math.Inf(1), -1
		for v, c := range counts {
			if c > bestC || (c == bestC && v < bestV) {
				bestV, bestC = v, c
			}
		}
		// Values built through table.Builder are float32-exact already;
		// rounding here guards tables assembled via table.New from raw
		// float64 columns (the member-validation pass below drops any row
		// the rounding pushes out of bounds).
		reps[ci] = floats.F32(bestV)
	}
	valid := rows[:0]
	for _, r := range rows {
		ok := true
		for ci, am := range chosen {
			if am.isCat {
				continue
			}
			v := t.Float(r, am.attr)
			if math.Abs(reps[ci]-v) > p.Widths[am.attr] ||
				!sameSide(reps[ci], v, splitsFor(p, am.attr)) {
				ok = false
				break
			}
		}
		if ok {
			valid = append(valid, r)
		}
	}
	if len(valid) < p.MinSize {
		return Fascicle{}, false
	}
	f := Fascicle{Rows: valid}
	for ci, am := range chosen {
		f.CompactAttrs = append(f.CompactAttrs, am.attr)
		if am.isCat {
			f.NumReps = append(f.NumReps, 0)
			f.CatReps = append(f.CatReps, am.seedC)
		} else {
			f.NumReps = append(f.NumReps, reps[ci])
			f.CatReps = append(f.CatReps, 0)
		}
	}
	return f, true
}

func splitsFor(p Params, attr int) []float64 {
	if p.SplitValues == nil {
		return nil
	}
	return p.SplitValues[attr]
}

// clampWindow shrinks a candidate window [lo, hi] containing seed value s
// so it does not straddle any split value: the final range must satisfy
// lo > v or hi <= v for every split v (the paper's RowAggregator
// compactness rule). The seed always remains inside.
func clampWindow(s, lo, hi float64, splits []float64) (float64, float64) {
	for _, v := range splits {
		if s <= v {
			// Seed on the "≤ v" side: clamp hi to v.
			if hi > v {
				hi = v
			}
		} else if lo <= v {
			// Seed on the "> v" side: clamp lo just above v.
			lo = math.Nextafter(v, math.Inf(1))
		}
	}
	return lo, hi
}

// Quantize returns a copy of the table with every compact attribute value
// replaced by its fascicle representative, preserving row order. Each
// changed numeric value moves by at most the attribute's width; categorical
// values never change (their compactness requires equality). This is the
// in-place form used by SPARTAN's RowAggregator: the quantized column has
// far fewer distinct values, which the downstream entropy coder exploits.
//
// Representatives are float32-exact and validated against every member at
// construction time, so the guarantees hold bit-exactly after the table
// travels through the float32 wire format.
func (c *Clustering) Quantize(t *table.Table) *table.Table {
	out := t.Clone()
	for fi := range c.Fascicles {
		f := &c.Fascicles[fi]
		for j, attr := range f.CompactAttrs {
			col := out.Col(attr)
			num, cat := f.repFor(t, j)
			for _, r := range f.Rows {
				if col.Kind == table.Numeric {
					col.Floats[r] = num
				} else {
					col.Codes[r] = cat
				}
			}
		}
	}
	return out
}

// sameSide reports whether a and b fall on the same side of every split
// value.
func sameSide(a, b float64, splits []float64) bool {
	for _, v := range splits {
		if (a <= v) != (b <= v) {
			return false
		}
	}
	return true
}

// CompressedValueCount returns the number of values the clustering stores,
// the unit the paper uses in Example 2.1: one per compact attribute per
// fascicle, plus one per non-compact attribute per member row, plus full
// rows for leftovers.
func (c *Clustering) CompressedValueCount(t *table.Table) int {
	total := len(c.Leftover) * t.NumCols()
	for i := range c.Fascicles {
		f := &c.Fascicles[i]
		total += len(f.CompactAttrs)
		total += (t.NumCols() - len(f.CompactAttrs)) * len(f.Rows)
	}
	return total
}
