package fascicle

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/floats"
	"repro/internal/table"
)

// paperTable reproduces the 8-tuple table of Figure 1(a).
func paperTable(t testing.TB) *table.Table {
	t.Helper()
	schema := table.Schema{
		{Name: "age", Kind: table.Numeric},
		{Name: "salary", Kind: table.Numeric},
		{Name: "assets", Kind: table.Numeric},
		{Name: "credit", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	rows := [][]any{
		{30.0, 90000.0, 200000.0, "good"},
		{50.0, 110000.0, 250000.0, "good"},
		{70.0, 35000.0, 125000.0, "poor"},
		{75.0, 15000.0, 100000.0, "poor"},
		{25.0, 50000.0, 75000.0, "good"},
		{35.0, 76000.0, 75000.0, "good"},
		{45.0, 100000.0, 175000.0, "poor"},
		{55.0, 80000.0, 150000.0, "good"},
	}
	for _, r := range rows {
		b.MustAppendRow(r...)
	}
	return b.MustBuild()
}

func paperWidths() []float64 { return []float64{2, 5000, 25000, 0} }

// TestPaperExample21 mirrors Example 2.1: with tolerances (2, 5000, 25000,
// 0) fascicles on (assets, credit) reduce the stored value count below the
// raw 8×4 = 32 values.
func TestPaperExample21(t *testing.T) {
	tb := paperTable(t)
	c, err := Cluster(tb, Params{K: 2, MinSize: 2, Widths: paperWidths()})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fascicles) == 0 {
		t.Fatal("no fascicles found on the paper's example")
	}
	if got := c.CompressedValueCount(tb); got >= 32 {
		t.Errorf("fascicles store %d values, want < 32", got)
	}
	// Every fascicle must satisfy the compactness semantics.
	assertCompact(t, tb, c, paperWidths())
}

func assertCompact(t *testing.T, tb *table.Table, c *Clustering, widths []float64) {
	t.Helper()
	for fi := range c.Fascicles {
		f := &c.Fascicles[fi]
		for j, attr := range f.CompactAttrs {
			col := tb.Col(attr)
			if col.Kind == table.Numeric {
				mn, mx := math.Inf(1), math.Inf(-1)
				for _, r := range f.Rows {
					v := col.Floats[r]
					mn = math.Min(mn, v)
					mx = math.Max(mx, v)
				}
				if mx-mn > 2*widths[attr]+1e-9 {
					t.Errorf("fascicle %d attr %d range %g exceeds 2e=%g",
						fi, attr, mx-mn, 2*widths[attr])
				}
				rep := f.NumReps[j]
				for _, r := range f.Rows {
					if math.Abs(col.Floats[r]-rep) > widths[attr]+1e-9 {
						t.Errorf("fascicle %d attr %d rep %g is %g from member",
							fi, attr, rep, math.Abs(col.Floats[r]-rep))
					}
				}
			} else {
				for _, r := range f.Rows {
					if col.Codes[r] != f.CatReps[j] {
						t.Errorf("fascicle %d: categorical attr %d not constant", fi, attr)
					}
				}
			}
		}
	}
}

func TestClusterParamValidation(t *testing.T) {
	tb := paperTable(t)
	if _, err := Cluster(tb, Params{Widths: []float64{1}}); err == nil {
		t.Error("Cluster accepted wrong-length widths")
	}
	if _, err := Cluster(tb, Params{Widths: paperWidths(),
		SplitValues: [][]float64{nil}}); err == nil {
		t.Error("Cluster accepted wrong-length split values")
	}
	// K larger than the column count clamps.
	c, err := Cluster(tb, Params{K: 99, MinSize: 2, Widths: paperWidths()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Fascicles {
		if len(c.Fascicles[i].CompactAttrs) > tb.NumCols() {
			t.Error("fascicle has more compact attrs than columns")
		}
	}
}

func TestClusterCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := clusteredTable(rng, 500)
	widths := []float64{1, 1, 0}
	c, err := Cluster(tb, Params{K: 2, Widths: widths})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, tb.NumRows())
	for i := range c.Fascicles {
		for _, r := range c.Fascicles[i].Rows {
			if seen[r] {
				t.Fatalf("row %d in two fascicles", r)
			}
			seen[r] = true
		}
	}
	for _, r := range c.Leftover {
		if seen[r] {
			t.Fatalf("leftover row %d also in a fascicle", r)
		}
		seen[r] = true
	}
	for r, s := range seen {
		if !s {
			t.Fatalf("row %d unaccounted for", r)
		}
	}
}

// clusteredTable draws rows from a few well-separated centers, ideal for
// fascicle detection.
func clusteredTable(rng *rand.Rand, n int) *table.Table {
	schema := table.Schema{
		{Name: "a", Kind: table.Numeric},
		{Name: "b", Kind: table.Numeric},
		{Name: "c", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	centers := [][2]float64{{10, 100}, {50, 200}, {90, 300}}
	cats := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		b.MustAppendRow(
			centers[k][0]+rng.Float64(),
			centers[k][1]+rng.Float64(),
			cats[k],
		)
	}
	return b.MustBuild()
}

func TestQuantizePreservesOrderAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tb := clusteredTable(rng, 400)
	widths := []float64{1, 1, 0}
	c, err := Cluster(tb, Params{K: 2, Widths: widths})
	if err != nil {
		t.Fatal(err)
	}
	q := c.Quantize(tb)
	if q.NumRows() != tb.NumRows() {
		t.Fatal("Quantize changed row count")
	}
	diffs, err := table.MaxAbsDiff(tb, q)
	if err != nil {
		t.Fatal(err)
	}
	for a, d := range diffs {
		if d > widths[a]+1e-9 {
			t.Errorf("attr %d quantization error %g > width %g", a, d, widths[a])
		}
	}
	// Categorical column must be untouched.
	if !floats.SameBits(diffs[2], 0) {
		t.Error("categorical column changed by quantization")
	}
}

func TestSplitValueInvariantProperty(t *testing.T) {
	// Property: with SplitValues set, quantized values stay on the same
	// side of every split value as the originals.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := clusteredTable(rng, 200)
		splits := [][]float64{{10.5, 50.5, 89.9}, {150, 250.2}, nil}
		widths := []float64{1, 1, 0}
		c, err := Cluster(tb, Params{K: 2, Widths: widths, SplitValues: splits})
		if err != nil {
			return false
		}
		q := c.Quantize(tb)
		for a := 0; a < 2; a++ {
			for r := 0; r < tb.NumRows(); r++ {
				orig, quant := tb.Float(r, a), q.Float(r, a)
				for _, v := range splits[a] {
					if (orig <= v) != (quant <= v) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeErrorBoundProperty(t *testing.T) {
	f := func(seed int64, wByte uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := clusteredTable(rng, 150)
		w := float64(wByte)/16 + 0.1
		widths := []float64{w, w, 0}
		c, err := Cluster(tb, Params{Widths: widths})
		if err != nil {
			return false
		}
		q := c.Quantize(tb)
		diffs, err := table.MaxAbsDiff(tb, q)
		if err != nil {
			return false
		}
		return diffs[0] <= w+1e-9 && diffs[1] <= w+1e-9 && floats.SameBits(diffs[2], 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// rowStrings renders a table as a sorted multiset of row strings for
// order-insensitive comparison.
func rowStrings(t *table.Table) []string {
	out := make([]string, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		var sb strings.Builder
		for c := 0; c < t.NumCols(); c++ {
			if t.Attr(c).Kind == table.Numeric {
				sb.WriteString(strconv.FormatFloat(t.Float(r, c), 'g', 8, 64))
			} else {
				sb.WriteString(t.CatString(r, c))
			}
			sb.WriteByte('|')
		}
		out[r] = sb.String()
	}
	sort.Strings(out)
	return out
}

func TestCompressDecompressMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := clusteredTable(rng, 300)
	widths := []float64{1, 1, 0}
	p := Params{K: 2, Widths: widths}
	c, err := Cluster(tb, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, gz := range []bool{false, true} {
		data, err := c.Encode(tb, gz)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumRows() != tb.NumRows() {
			t.Fatalf("gz=%v: decompressed %d rows, want %d", gz, back.NumRows(), tb.NumRows())
		}
		// Decompressed rows (a multiset) must equal the quantized table's
		// rows, modulo float32 storage of non-compact numeric cells.
		want := rowStrings(c.Quantize(tb))
		got := rowStrings(back)
		mismatches := 0
		for i := range want {
			if want[i] != got[i] {
				mismatches++
			}
		}
		// Values in these tables are small enough to be exact in float32.
		if mismatches != 0 {
			t.Errorf("gz=%v: %d/%d rows differ after round trip", gz, mismatches, len(want))
		}
	}
}

func TestCompressShrinksClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tb := clusteredTable(rng, 2000)
	data, err := Compress(tb, Params{K: 2, Widths: []float64{1, 1, 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if raw := tb.RawSizeBytes(); len(data) >= raw {
		t.Errorf("fascicle output %d B >= raw %d B on highly clustered data", len(data), raw)
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := clusteredTable(rng, 100)
	data, err := Compress(tb, Params{K: 2, Widths: []float64{1, 1, 0}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(nil); err == nil {
		t.Error("Decompress accepted empty input")
	}
	if _, err := Decompress(data[:len(data)/2]); err == nil {
		t.Error("Decompress accepted truncated input")
	}
	bad := append([]byte(nil), data...)
	bad[2] ^= 0x55
	if _, err := Decompress(bad); err == nil {
		t.Error("Decompress accepted corrupted magic")
	}
}

func TestMaxFasciclesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tb := clusteredTable(rng, 300)
	c, err := Cluster(tb, Params{K: 2, MaxFascicles: 1, Widths: []float64{1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fascicles) > 1 {
		t.Errorf("got %d fascicles, cap was 1", len(c.Fascicles))
	}
}

func TestMinSizeRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tb := clusteredTable(rng, 300)
	c, err := Cluster(tb, Params{K: 2, MinSize: 50, Widths: []float64{1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Fascicles {
		if len(c.Fascicles[i].Rows) < 50 {
			t.Errorf("fascicle %d has %d rows, MinSize 50", i, len(c.Fascicles[i].Rows))
		}
	}
}

func TestClampWindow(t *testing.T) {
	// Seed below the split: window clamps from above.
	lo, hi := clampWindow(5, 3, 9, []float64{7})
	if !floats.SameBits(lo, 3) || !floats.SameBits(hi, 7) {
		t.Errorf("clampWindow = [%g,%g], want [3,7]", lo, hi)
	}
	// Seed above the split: lo must end up strictly greater than 7.
	lo, hi = clampWindow(8, 5, 11, []float64{7})
	if !(lo > 7) || !floats.SameBits(hi, 11) {
		t.Errorf("clampWindow = [%g,%g], want (7,11]", lo, hi)
	}
	// Seed exactly on the split is on the "≤ v" side.
	lo, hi = clampWindow(7, 5, 9, []float64{7})
	if !floats.SameBits(lo, 5) || !floats.SameBits(hi, 7) {
		t.Errorf("clampWindow = [%g,%g], want [5,7]", lo, hi)
	}
	// No splits: unchanged.
	lo, hi = clampWindow(5, 1, 9, nil)
	if !floats.SameBits(lo, 1) || !floats.SameBits(hi, 9) {
		t.Errorf("clampWindow = [%g,%g], want [1,9]", lo, hi)
	}
}

func TestColIndexRangeQueries(t *testing.T) {
	tb := paperTable(t)
	idx := buildIndex(tb)
	// Salary column: values 15k..110k.
	if got := idx[1].countRange(50000, 90000); got != 4 { // 50,76,80,90 (k)
		t.Errorf("countRange = %d, want 4", got)
	}
	assigned := make([]bool, tb.NumRows())
	rows := idx[1].rowsInRange(50000, 90000, assigned, nil)
	if len(rows) != 4 {
		t.Errorf("rowsInRange = %v, want 4 rows", rows)
	}
	assigned[4] = true // salary 50,000
	rows = idx[1].rowsInRange(50000, 90000, assigned, nil)
	if len(rows) != 3 {
		t.Errorf("rowsInRange with assignment = %v, want 3 rows", rows)
	}
	// Categorical buckets.
	if got := len(idx[3].buckets[tb.Col(3).Codes[0]]); got != 5 { // "good"
		t.Errorf("bucket size = %d, want 5", got)
	}
}

func TestSameSide(t *testing.T) {
	if !sameSide(1, 2, []float64{5}) {
		t.Error("1 and 2 are both below 5")
	}
	if sameSide(4, 6, []float64{5}) {
		t.Error("4 and 6 straddle 5")
	}
	if !sameSide(4, 6, nil) {
		t.Error("no splits means always same side")
	}
	// Boundary: v <= split is the left side.
	if sameSide(5, 5.1, []float64{5}) {
		t.Error("5 (left) and 5.1 (right) straddle the split at 5")
	}
}
