package fascicle

import (
	"math/rand"
	"testing"
)

// FuzzDecompress asserts the fascicle decoder never panics on arbitrary
// input.
func FuzzDecompress(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	tb := clusteredTable(rng, 100)
	data, err := Compress(tb, Params{K: 2, Widths: []float64{1, 1, 0}}, false)
	if err != nil {
		f.Fatal(err)
	}
	gzData, err := Compress(tb, Params{K: 2, Widths: []float64{1, 1, 0}}, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(gzData)
	f.Add([]byte{})
	f.Add([]byte(fascicleMagic))
	f.Add(data[:len(data)/2])
	mutated := append([]byte(nil), data...)
	mutated[len(mutated)/2] ^= 0xAA
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Decompress(data)
		if err == nil && tbl == nil {
			t.Error("Decompress returned nil table without error")
		}
	})
}
