// Package floats provides explicit float64 comparison helpers.
//
// Direct == / != on floating-point values is banned in the numeric
// packages (cart, fascicle, selector) by the spartanvet floatcmp
// analyzer: it is too easy to write an equality that silently breaks
// under accumulated rounding, and when bit-exact equality *is* the
// intent (tie-breaking, sentinel detection, duplicate-x collapsing),
// the intent should be visible at the call site. These helpers name
// the two meanings.
package floats

import "math"

// SameBits reports whether a and b have identical IEEE-754 bit
// patterns. It is the deterministic, transitive equality used for
// tie-breaking and duplicate detection: unlike ==, it treats NaN as
// equal to an identical NaN and distinguishes +0 from -0, so sorting
// and grouping decisions based on it are reproducible.
func SameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Within reports whether a and b differ by at most tol. It is the
// tolerance comparison for values that have been through arithmetic;
// tol must be non-negative. NaN inputs are never within any tolerance.
func Within(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// F32 rounds v through float32 precision, the quantisation applied to
// fascicle representative values before they are stored (paper §3.4
// stores dimension representatives as single-precision floats).
func F32(v float64) float64 {
	return float64(float32(v))
}
