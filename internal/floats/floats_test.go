package floats

import (
	"math"
	"testing"
)

func TestSameBits(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		a, b float64
		want bool
	}{
		{1.5, 1.5, true},
		{1.5, 1.5000001, false},
		{0.0, math.Copysign(0, -1), false}, // +0 and -0 are distinct bit patterns
		{nan, nan, true},                   // identical NaN payloads compare equal
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
	} {
		if got := SameBits(tc.a, tc.b); got != tc.want {
			t.Errorf("SameBits(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestWithin(t *testing.T) {
	for _, tc := range []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0, 0, true},
		{1.0, 1.1, 0.2, true},
		{1.0, 1.1, 0.05, false},
		{-3, 3, 6, true},
		{math.NaN(), 1, 100, false},
		{1, math.NaN(), 100, false},
	} {
		if got := Within(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("Within(%v, %v, %v) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}

func TestF32(t *testing.T) {
	if got := F32(1.5); got != 1.5 {
		t.Errorf("F32(1.5) = %v, exactly representable values must round-trip", got)
	}
	v := 0.1
	if got := F32(v); got == v {
		t.Error("F32(0.1) must lose the double-precision tail")
	}
	if got := F32(v); got != float64(float32(v)) {
		t.Errorf("F32(0.1) = %v, want %v", got, float64(float32(v)))
	}
}
