// Package gzipref is the syntactic-compression baseline of the paper's
// evaluation (§4.1): the table is sorted lexicographically, serialized
// row-wise in the raw fixed-length record format, and deflated with gzip.
// The sort makes runs of similar records adjacent, which the paper found
// to significantly outperform unsorted row-wise gzip.
package gzipref

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/table"
)

// Compress returns the gzip-baseline encoding of the table.
func Compress(t *table.Table) ([]byte, error) {
	sorted, err := t.SelectRows(t.LexSortedRows())
	if err != nil {
		return nil, fmt.Errorf("gzipref: sorting rows: %w", err)
	}
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		return nil, err
	}
	if err := table.WriteBinary(zw, sorted); err != nil {
		return nil, fmt.Errorf("gzipref: serializing table: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CompressUnsorted gzips the raw serialization without the lexicographic
// sort; it exists for the ablation showing why the baseline sorts first.
func CompressUnsorted(t *table.Table) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		return nil, err
	}
	if err := table.WriteBinary(zw, t); err != nil {
		return nil, fmt.Errorf("gzipref: serializing table: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress decodes a stream produced by Compress. Rows come back in
// lexicographic order (the baseline treats the table as an unordered
// multiset, like the paper).
func Decompress(data []byte) (*table.Table, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("gzipref: opening gzip stream: %w", err)
	}
	defer zr.Close()
	t, err := table.ReadBinary(zr)
	if err != nil {
		return nil, fmt.Errorf("gzipref: decoding table: %w", err)
	}
	// Drain to verify stream integrity (CRC is checked on EOF).
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, fmt.Errorf("gzipref: verifying stream: %w", err)
	}
	return t, nil
}
