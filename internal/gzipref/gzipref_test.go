package gzipref

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

func testTable(rng *rand.Rand, n int) *table.Table {
	schema := table.Schema{
		{Name: "a", Kind: table.Numeric},
		{Name: "b", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	cats := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		b.MustAppendRow(float64(rng.Intn(50)), cats[rng.Intn(3)])
	}
	return b.MustBuild()
}

func TestRoundTripAsMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := testTable(rng, 500)
	data, err := Compress(tb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	// Sorting the original must reproduce the decompressed table exactly.
	sorted, err := tb.SelectRows(tb.LexSortedRows())
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(sorted, back) {
		t.Error("round trip does not match lexicographically sorted original")
	}
}

func TestCompressionHelpsOnRepetitiveData(t *testing.T) {
	// Low-cardinality data compresses far below raw size.
	rng := rand.New(rand.NewSource(2))
	tb := testTable(rng, 5000)
	data, err := Compress(tb)
	if err != nil {
		t.Fatal(err)
	}
	if raw := tb.RawSizeBytes(); len(data) >= raw/2 {
		t.Errorf("gzip output %d B, want < half of raw %d B", len(data), raw)
	}
}

func TestSortImprovesCompression(t *testing.T) {
	// The paper's observation: sorting before gzip helps. Compare against
	// gzipping the unsorted serialization.
	rng := rand.New(rand.NewSource(3))
	tb := testTable(rng, 5000)
	sorted, err := Compress(tb)
	if err != nil {
		t.Fatal(err)
	}
	unsorted := gzipRaw(t, tb)
	if len(sorted) > unsorted {
		t.Errorf("sorted gzip %d B worse than unsorted %d B", len(sorted), unsorted)
	}
}

func gzipRaw(t *testing.T, tb *table.Table) int {
	t.Helper()
	data, err := CompressUnsorted(tb)
	if err != nil {
		t.Fatal(err)
	}
	return len(data)
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := Decompress([]byte("not gzip at all")); err == nil {
		t.Error("Decompress accepted garbage")
	}
	if _, err := Decompress(nil); err == nil {
		t.Error("Decompress accepted empty input")
	}
	rng := rand.New(rand.NewSource(4))
	data, err := Compress(testTable(rng, 50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(data[:len(data)-4]); err == nil {
		t.Error("Decompress accepted truncated stream")
	}
}

func TestLexSortedRowsIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := testTable(rng, 200)
	idx := tb.LexSortedRows()
	if len(idx) != tb.NumRows() {
		t.Fatalf("permutation length %d != %d", len(idx), tb.NumRows())
	}
	for i := 1; i < len(idx); i++ {
		a, b := idx[i-1], idx[i]
		va, vb := tb.Float(a, 0), tb.Float(b, 0)
		if va > vb {
			t.Fatalf("rows %d,%d out of order on first column", a, b)
		}
		if va == vb && tb.CatString(a, 1) > tb.CatString(b, 1) {
			t.Fatalf("rows %d,%d out of order on second column", a, b)
		}
	}
}
