package obs

// Span→registry bridge: the generic per-phase metric families that turn
// any trace's finished spans into Prometheus histograms. The HTTP
// service attaches the observer to its /compress and /query traces so
// the §4.2 phase tree that `-trace` prints is also quantified on
// /metrics — in wall-clock seconds and, for resource-capturing traces,
// in allocated bytes and objects.

// Default bucket layouts for the bridge's allocation histograms: 1 KiB
// to 4 GiB (bytes) and 16 to 64 M (objects), quadrupling per bucket.
var (
	allocBytesBuckets = ExponentialBuckets(1<<10, 4, 12)
	allocObjsBuckets  = ExponentialBuckets(16, 4, 12)
)

// NewSpanObserver registers the bridge families on reg and returns an
// observer for Trace.OnSpanEnd. Every finished span is recorded as
//
//	spartan_phase_duration_seconds{trace,phase}  span duration
//	spartan_phase_alloc_bytes{trace,phase}       heap bytes allocated while open
//	spartan_phase_allocs{trace,phase}            heap objects allocated while open
//
// where trace is the trace's name ("compress", "query", …) and phase is
// the span's name; root spans appear under their own name, so a trace's
// total duration is the phase matching its root. The allocation families
// are only fed by resource-capturing traces (Trace.CaptureResources).
// Calling NewSpanObserver repeatedly on the same registry is cheap and
// safe: the families are shared.
func NewSpanObserver(reg *Registry) func(*Span) {
	seconds := reg.Histogram("spartan_phase_duration_seconds",
		"Pipeline span duration in seconds, by trace and phase (span name).",
		DefBuckets, "trace", "phase")
	allocBytes := reg.Histogram("spartan_phase_alloc_bytes",
		"Heap bytes allocated while the span was open, by trace and phase.",
		allocBytesBuckets, "trace", "phase")
	allocs := reg.Histogram("spartan_phase_allocs",
		"Heap objects allocated while the span was open, by trace and phase.",
		allocObjsBuckets, "trace", "phase")
	return func(sp *Span) {
		if sp == nil {
			return
		}
		tr := sp.tr.Name()
		seconds.Observe(sp.Duration().Seconds(), tr, sp.Name)
		if res, ok := sp.Resources(); ok {
			allocBytes.Observe(float64(res.AllocBytes), tr, sp.Name)
			allocs.Observe(float64(res.AllocObjects), tr, sp.Name)
		}
	}
}
