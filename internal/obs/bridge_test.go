package obs

import (
	"strings"
	"testing"
)

// TestSpanObserverExposition asserts the bridge renders the per-phase
// histograms under their stable names: dashboards and the recorded perf
// trajectory key off these exact family/label identifiers.
func TestSpanObserverExposition(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace("compress")
	tr.CaptureResources()
	tr.OnSpanEnd(NewSpanObserver(reg))

	root := tr.Start("compress")
	child := root.StartChild("encode")
	sink = make([]byte, 64<<10) // give the allocation delta something to see
	child.Finish()
	root.Finish()

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE spartan_phase_duration_seconds histogram",
		`spartan_phase_duration_seconds_count{trace="compress",phase="encode"} 1`,
		`spartan_phase_duration_seconds_count{trace="compress",phase="compress"} 1`,
		"# TYPE spartan_phase_alloc_bytes histogram",
		`spartan_phase_alloc_bytes_count{trace="compress",phase="encode"} 1`,
		"# TYPE spartan_phase_allocs histogram",
		`spartan_phase_allocs_count{trace="compress",phase="compress"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// sink keeps the test allocation observable by the runtime counters.
var sink []byte

// TestSpanObserverNoResources: a trace without CaptureResources feeds the
// duration family only — the allocation families stay empty (and hence
// unrendered).
func TestSpanObserverNoResources(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace("query")
	tr.OnSpanEnd(NewSpanObserver(reg))
	sp := tr.Start("decode")
	sp.Finish()

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `spartan_phase_duration_seconds_count{trace="query",phase="decode"} 1`) {
		t.Errorf("duration family missing:\n%s", out)
	}
	if strings.Contains(out, "spartan_phase_alloc_bytes") {
		t.Errorf("alloc family rendered for a non-capturing trace:\n%s", out)
	}
}
