package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricType is the Prometheus exposition TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric with a fixed label-name set; its children
// are the per-label-value time series.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	mu       sync.Mutex
	children map[string]*child
}

type child struct {
	labelValues []string
	value       float64 // counter / gauge

	bucketCounts []uint64 // histogram: one per bucket bound
	sum          float64
	count        uint64
}

// register returns the family, creating it on first use. Re-registering
// the same name with a different type or label set is a programming
// error and panics.
func (r *Registry) register(name, help string, typ metricType, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different type or labels", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]*child{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func (f *family) child(labelValues []string) *child {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	c, ok := f.children[key]
	if !ok {
		c = &child{
			labelValues:  append([]string(nil), labelValues...),
			bucketCounts: make([]uint64, len(f.buckets)),
		}
		f.children[key] = c
	}
	return c
}

// Counter is a monotonically increasing metric.
type Counter struct{ f *family }

// Counter registers (or fetches) a counter family. labelNames fixes the
// label schema; observations supply matching values.
func (r *Registry) Counter(name, help string, labelNames ...string) Counter {
	return Counter{r.register(name, help, typeCounter, nil, labelNames)}
}

// Inc adds 1.
func (c Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add increases the counter by v (v must be ≥ 0).
func (c Counter) Add(v float64, labelValues ...string) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter %q decreased by %g", c.f.name, v))
	}
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	c.f.child(labelValues).value += v
}

// Gauge is a metric that can go up and down.
type Gauge struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) Gauge {
	return Gauge{r.register(name, help, typeGauge, nil, labelNames)}
}

// Set stores v.
func (g Gauge) Set(v float64, labelValues ...string) {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	g.f.child(labelValues).value = v
}

// Add adjusts the gauge by v (negative to decrease).
func (g Gauge) Add(v float64, labelValues ...string) {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	g.f.child(labelValues).value += v
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct{ f *family }

// Histogram registers (or fetches) a histogram family with the given
// ascending upper bounds (the implicit +Inf bucket is added on render).
// Nil buckets selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	return Histogram{r.register(name, help, typeHistogram, buckets, labelNames)}
}

// Observe records one value.
func (h Histogram) Observe(v float64, labelValues ...string) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	c := h.f.child(labelValues)
	// Per-bucket (non-cumulative) counts; rendering cumulates them.
	for i, ub := range h.f.buckets {
		if v <= ub {
			c.bucketCounts[i]++
			break
		}
	}
	c.sum += v
	c.count++
}

// DefBuckets are the conventional latency buckets (seconds), matching the
// Prometheus client default.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LinearBuckets returns count buckets starting at start, spaced by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count buckets starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// WritePrometheus renders every family in the text exposition format.
// Families appear in registration order; children are sorted by label
// values so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	// The snapshot keeps the registry lock release deferred while the
	// (possibly slow) writes below run unlocked.
	for _, f := range r.snapshot() {
		f.write(w)
	}
}

// snapshot copies the family list under the read lock.
func (r *Registry) snapshot() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*family(nil), r.families...)
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.children) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := f.children[k]
		switch f.typ {
		case typeHistogram:
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += c.bucketCounts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelValues, "le", formatFloat(ub)), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, c.labelValues, "le", "+Inf"), c.count)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
				labelString(f.labels, c.labelValues, "", ""), formatFloat(c.sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name,
				labelString(f.labels, c.labelValues, "", ""), c.count)
		default:
			fmt.Fprintf(w, "%s%s %s\n", f.name,
				labelString(f.labels, c.labelValues, "", ""), formatFloat(c.value))
		}
	}
}

// labelString renders {a="x",b="y"} with an optional extra pair (used for
// le). Returns "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in the text exposition format — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
}
