package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text format emitted for
// a counter, gauge and histogram, including label escaping and the
// cumulative +Inf bucket.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("http_requests_total", "Requests served.", "route", "code")
	c.Inc("/compress", "200")
	c.Inc("/compress", "200")
	c.Inc("/query", "400")
	g := r.Gauge("in_flight", "In-flight requests.")
	g.Set(3)
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1}, "route")
	h.Observe(0.05, "/compress")
	h.Observe(0.5, "/compress")
	h.Observe(5, "/compress")

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{route="/compress",code="200"} 2
http_requests_total{route="/query",code="400"} 1
# HELP in_flight In-flight requests.
# TYPE in_flight gauge
in_flight 3
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{route="/compress",le="0.1"} 1
latency_seconds_bucket{route="/compress",le="1"} 2
latency_seconds_bucket{route="/compress",le="+Inf"} 3
latency_seconds_sum{route="/compress"} 5.55
latency_seconds_count{route="/compress"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h", "path").Inc(`a"b\c` + "\nd")
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `m{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label missing:\n%s\nwant substring %s", b.String(), want)
	}
}

func TestReregisterReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h")
	b := r.Counter("dup_total", "h")
	a.Inc()
	b.Inc()
	var out strings.Builder
	r.WritePrometheus(&out)
	if !strings.Contains(out.String(), "dup_total 2") {
		t.Errorf("want shared series with value 2, got:\n%s", out.String())
	}
}

func TestReregisterTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on type mismatch")
		}
	}()
	r := NewRegistry()
	//spartanvet:ignore metricname distinct fresh registries per test; the panic on this mismatch is the behaviour under test
	r.Counter("m", "h")
	//spartanvet:ignore metricname same — the type-mismatch panic is the point
	r.Gauge("m", "h")
}

func TestLabelArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong label count")
		}
	}()
	r := NewRegistry()
	//spartanvet:ignore metricname fresh registry; label-arity panic is the behaviour under test
	r.Counter("m", "h", "a", "b").Inc("only-one")
}

// TestConcurrentUse hammers every metric kind from many goroutines; run
// with -race this doubles as the registry's concurrency-safety proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h", "worker")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", []float64{0.5}, "worker")
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc(lbl)
				g.Add(1)
				h.Observe(float64(i%2), lbl)
				if i%100 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `c_total{worker="a"} 500`) {
		t.Errorf("lost counter increments:\n%s", out)
	}
	if !strings.Contains(out, "g 4000") {
		t.Errorf("lost gauge adds:\n%s", out)
	}
	if !strings.Contains(out, `h_seconds_count{worker="a"} 500`) {
		t.Errorf("lost histogram observations:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h").Add(7)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 7") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0.1, 0.1, 3)
	if lin[0] != 0.1 || lin[2] != 0.30000000000000004 && lin[2] != 0.3 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if exp[3] != 8 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
}
