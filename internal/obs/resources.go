package obs

import "runtime/metrics"

// Resources is the allocation cost attributed to a span: deltas of the
// process-wide heap allocation counters (runtime/metrics) between the
// span's start and finish. For the single-goroutine pipeline phases the
// delta is exact attribution; when other goroutines allocate while the
// span is open their allocations are included, so under concurrency the
// numbers are an upper bound per span (and still sum consistently across
// a sequential phase tree).
type Resources struct {
	AllocBytes   uint64 // heap bytes allocated while the span was open
	AllocObjects uint64 // heap objects allocated while the span was open
}

// Sub returns the counter delta r−start, clamping at zero so a torn read
// can never produce a wrapped huge value.
func (r Resources) Sub(start Resources) Resources {
	var d Resources
	if r.AllocBytes > start.AllocBytes {
		d.AllocBytes = r.AllocBytes - start.AllocBytes
	}
	if r.AllocObjects > start.AllocObjects {
		d.AllocObjects = r.AllocObjects - start.AllocObjects
	}
	return d
}

// resourceMetrics are the runtime/metrics cumulative counters sampled at
// span boundaries. Both are monotonic uint64 totals since process start.
var resourceMetrics = [...]string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
}

// ReadResources samples the cumulative process allocation counters. Two
// ReadResources calls bracketing a section of code give that section's
// allocation cost via Sub; reading costs well under a microsecond, so
// bracketing every pipeline phase is free at SPARTAN's time scales.
//
// Granularity: small-object allocations are batched in per-P caches and
// only reach these counters when a cache span is exhausted, so a delta
// can lag by up to a cache span per size class; large objects (>32 KiB)
// are visible immediately. Pipeline phases allocate megabytes, so the
// lag is noise there — but do not expect exact byte accounting across a
// section that allocates only a few small objects (the bench harness
// uses runtime.ReadMemStats for its exact allocs/op numbers instead).
func ReadResources() Resources {
	var s [len(resourceMetrics)]metrics.Sample
	for i, name := range resourceMetrics {
		s[i].Name = name
	}
	metrics.Read(s[:])
	return Resources{
		AllocBytes:   s[0].Value.Uint64(),
		AllocObjects: s[1].Value.Uint64(),
	}
}
