package obs

import "testing"

// TestSpanResources: a resource-capturing trace attributes a visible
// allocation to the span that made it, and non-capturing traces report
// ok=false.
func TestSpanResources(t *testing.T) {
	tr := NewTrace("t")
	tr.CaptureResources()
	sp := tr.Start("alloc")
	sink = make([]byte, 1<<20)
	sp.Finish()

	res, ok := sp.Resources()
	if !ok {
		t.Fatal("Resources() not captured on a capturing trace")
	}
	if res.AllocBytes < 1<<20 {
		t.Errorf("AllocBytes = %d, want >= %d", res.AllocBytes, 1<<20)
	}
	if res.AllocObjects == 0 {
		t.Errorf("AllocObjects = 0, want > 0")
	}

	plain := NewTrace("t2").Start("p")
	plain.Finish()
	if _, ok := plain.Resources(); ok {
		t.Error("Resources() ok on a non-capturing trace")
	}
	var nilSpan *Span
	if _, ok := nilSpan.Resources(); ok {
		t.Error("Resources() ok on a nil span")
	}
}

// TestReadResourcesMonotonic: the sampled counters never go backwards,
// and Sub clamps rather than wrapping. The probe allocation is large
// (>32 KiB) so it bypasses the per-P allocation cache and is visible to
// the counters immediately.
func TestReadResourcesMonotonic(t *testing.T) {
	a := ReadResources()
	sink = make([]byte, 1<<20)
	b := ReadResources()
	d := b.Sub(a)
	if d.AllocBytes == 0 {
		t.Error("no bytes attributed across an allocation")
	}
	if z := a.Sub(b); z.AllocBytes != 0 || z.AllocObjects != 0 {
		t.Errorf("Sub of earlier-minus-later = %+v, want zero", z)
	}
}
