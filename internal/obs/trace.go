// Package obs is SPARTAN's observability substrate: pipeline tracing
// (Trace/Span) and a Prometheus-compatible metrics registry. It is pure
// standard library, matching the repository's zero-dependency go.mod, and
// every piece is safe for concurrent use.
//
// Tracing mirrors the paper's §4.2 running-time accounting: each
// compression run produces one span per pipeline component
// (DependencyFinder, CaRTSelector+Builder, RowAggregator, outlier scan,
// encoder), annotated with the quantities the paper reports — rows
// scanned, CaRTs built, outliers found, bytes written.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is a timed section of a pipeline run. Spans form a tree: the
// compression pipeline emits a root span with one child per component.
// A Span's setters must be called from the goroutine that started it;
// reading (Spans, WriteTree) is safe once the span has ended.
type Span struct {
	Name  string
	Start time.Time
	End   time.Time
	Depth int // 0 for root spans

	tr    *Trace
	attrs []Attr

	// Resource attribution (Trace.CaptureResources): the allocation
	// counters at Start, and the delta computed at Finish.
	resStart Resources
	res      Resources
	hasRes   bool
}

// SetAttr annotates the span. It returns the span for chaining and is a
// no-op on a nil span.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// Attrs returns the span's annotations in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Attr returns the value of the named annotation, or nil.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// Duration is End−Start, or the elapsed time so far for an open span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.End.IsZero() {
		return time.Since(s.Start)
	}
	return s.End.Sub(s.Start)
}

// StartChild opens a child span. No-op (returns nil) on a nil span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(name, s.Depth+1)
}

// Finish closes the span, stamps End (and, on a resource-capturing
// trace, the allocation delta), and fires the trace's OnSpanEnd
// observer. Safe on a nil span; closing twice keeps the first End.
func (s *Span) Finish() {
	if s == nil || !s.End.IsZero() {
		return
	}
	if s.hasRes {
		s.res = ReadResources().Sub(s.resStart)
	}
	s.End = time.Now()
	if s.tr != nil && s.tr.onEnd != nil {
		s.tr.onEnd(s)
	}
}

// Resources returns the span's attributed allocation deltas. ok is false
// when the trace did not capture resources (see Trace.CaptureResources).
// On an open span the delta covers start-to-now; once finished it is
// frozen at the Finish-time value.
func (s *Span) Resources() (res Resources, ok bool) {
	if s == nil || !s.hasRes {
		return Resources{}, false
	}
	if s.End.IsZero() {
		return ReadResources().Sub(s.resStart), true
	}
	return s.res, true
}

// Trace collects the spans of one pipeline run. The zero value is not
// usable; construct with NewTrace. All methods are safe on a nil *Trace,
// so callers can thread an optional trace without guarding every call.
type Trace struct {
	name       string
	onEnd      func(*Span)
	captureRes bool

	mu    sync.Mutex
	spans []*Span // in start order
}

// NewTrace returns an empty trace named name.
func NewTrace(name string) *Trace {
	return &Trace{name: name}
}

// Name returns the trace's name ("" for nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// OnSpanEnd registers fn to be called synchronously each time a span of
// this trace finishes — the hook that feeds span durations into a metrics
// Registry. Must be set before spans are started.
func (t *Trace) OnSpanEnd(fn func(*Span)) {
	if t == nil {
		return
	}
	t.onEnd = fn
}

// CaptureResources makes every span started afterwards record its
// allocation cost (bytes and objects allocated while open, via
// runtime/metrics — see Span.Resources). Like OnSpanEnd it must be set
// before spans are started. The per-span cost is two counter reads,
// well under a microsecond.
func (t *Trace) CaptureResources() {
	if t == nil {
		return
	}
	t.captureRes = true
}

// Start opens a new root-level span. Returns nil on a nil trace.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, 0)
}

func (t *Trace) start(name string, depth int) *Span {
	s := &Span{Name: name, Start: time.Now(), Depth: depth, tr: t}
	if t.captureRes {
		s.hasRes = true
		s.resStart = ReadResources()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, s)
	return s
}

// Spans returns a snapshot of all spans in start order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Find returns the first span with the given name, or nil.
func (t *Trace) Find(name string) *Span {
	for _, s := range t.Spans() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteTree renders the span tree as indented text, one span per line:
//
//	compress                            182ms  rows=25000 cols=10
//	  dependency_finder                  23ms  sample_rows=1571
//	  cart_selection                     98ms  carts_built=14
//
// Durations are rounded for readability; attributes follow in insertion
// order. No-op on a nil trace.
func (t *Trace) WriteTree(w io.Writer) {
	if t == nil {
		return
	}
	for _, s := range t.Spans() {
		indent := ""
		for i := 0; i < s.Depth; i++ {
			indent += "  "
		}
		line := fmt.Sprintf("%-36s %9v", indent+s.Name, roundDuration(s.Duration()))
		for _, a := range s.attrs {
			line += fmt.Sprintf("  %s=%v", a.Key, a.Value)
		}
		if res, ok := s.Resources(); ok {
			line += fmt.Sprintf("  alloc_bytes=%d  allocs=%d", res.AllocBytes, res.AllocObjects)
		}
		fmt.Fprintln(w, line)
	}
}

// roundDuration trims sub-microsecond noise so trees stay readable while
// remaining precise enough for the §4.2-style breakdowns.
func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}
