package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("compress")
	root := tr.Start("compress")
	root.SetAttr("rows", 100)
	child := root.StartChild("dependency_finder")
	child.SetAttr("sample_rows", 10)
	child.Finish()
	child2 := root.StartChild("encode")
	child2.Finish()
	root.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Depth != 0 || spans[1].Depth != 1 || spans[2].Depth != 1 {
		t.Errorf("depths = %d,%d,%d", spans[0].Depth, spans[1].Depth, spans[2].Depth)
	}
	if got := spans[1].Attr("sample_rows"); got != 10 {
		t.Errorf("Attr(sample_rows) = %v", got)
	}
	for _, s := range spans {
		if s.End.Before(s.Start) {
			t.Errorf("span %q ends before it starts", s.Name)
		}
	}
	if root.End.Before(child2.End) {
		t.Error("root ended before its last child")
	}

	var b strings.Builder
	tr.WriteTree(&b)
	out := b.String()
	for _, want := range []string{"compress", "  dependency_finder", "sample_rows=10", "  encode"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestOnSpanEnd(t *testing.T) {
	tr := NewTrace("t")
	var ended []string
	tr.OnSpanEnd(func(s *Span) { ended = append(ended, s.Name) })
	s := tr.Start("a")
	c := s.StartChild("b")
	c.Finish()
	c.Finish() // double-finish must not re-fire
	s.Finish()
	if len(ended) != 2 || ended[0] != "b" || ended[1] != "a" {
		t.Errorf("OnSpanEnd order = %v, want [b a]", ended)
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	tr := NewTrace("t")
	s := tr.Start("a")
	s.Finish()
	end := s.End
	time.Sleep(time.Millisecond)
	s.Finish()
	if !s.End.Equal(end) {
		t.Error("second Finish moved End")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	sp.SetAttr("k", 1)
	sp.StartChild("y").Finish()
	sp.Finish()
	tr.OnSpanEnd(nil)
	tr.WriteTree(&strings.Builder{})
	if tr.Spans() != nil || tr.Find("x") != nil || tr.Name() != "" {
		t.Error("nil trace leaked state")
	}
	if sp.Duration() != 0 || sp.Attrs() != nil || sp.Attr("k") != nil {
		t.Error("nil span leaked state")
	}
}

func TestOpenSpanDuration(t *testing.T) {
	tr := NewTrace("t")
	//spartanvet:ignore spanfinish the span is deliberately left open to test Duration on a live span
	s := tr.Start("a")
	time.Sleep(2 * time.Millisecond)
	if s.Duration() <= 0 {
		t.Error("open span duration not positive")
	}
	if tr.Find("a") != s {
		t.Error("Find did not return the span")
	}
}
