// Package pzipref implements a simplified column-grouping compressor in
// the spirit of Buchsbaum et al., "Engineering the Compression of Massive
// Tables" (SODA 2000) — the paper's reference [3] and the strongest
// syntactic (lossless) table compressor of its era.
//
// The idea: serialize groups of correlated columns together so that
// Lempel-Ziv windows see their joint redundancy, instead of gzipping the
// whole record stream. The original work trains an optimal contiguous
// partition; this implementation uses greedy agglomerative grouping
// guided by measured gzip sizes on a sample, then compresses each group
// independently at full scale.
package pzipref

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/table"
)

const magic = "SPPZP1\n"

// maxSampleRows bounds the row prefix used to evaluate candidate
// groupings.
const maxSampleRows = 512

// Compress serializes the table with learned column grouping. The output
// is lossless (modulo the float32 cell format shared by all compressors
// in this repository).
func Compress(t *table.Table) ([]byte, error) {
	groups := planGroups(t)

	var out bytes.Buffer
	out.WriteString(magic)
	bw := bufio.NewWriter(&out)
	if err := writeSchema(bw, t); err != nil {
		return nil, err
	}
	if err := putUvarint(bw, uint64(t.NumRows())); err != nil {
		return nil, err
	}
	if err := putUvarint(bw, uint64(len(groups))); err != nil {
		return nil, err
	}
	for _, g := range groups {
		if err := putUvarint(bw, uint64(len(g))); err != nil {
			return nil, err
		}
		for _, c := range g {
			if err := putUvarint(bw, uint64(c)); err != nil {
				return nil, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	for _, g := range groups {
		payload, err := gzipGroup(t, g, 0, t.NumRows())
		if err != nil {
			return nil, err
		}
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		out.Write(lenBuf[:n])
		out.Write(payload)
	}
	return out.Bytes(), nil
}

// planGroups chooses a contiguous column partition (like the original
// pzip) by greedy agglomeration on a row-prefix sample: repeatedly merge
// the adjacent pair of groups whose union compresses better than the two
// apart, until no merge helps.
func planGroups(t *table.Table) [][]int {
	sampleRows := t.NumRows()
	if sampleRows > maxSampleRows {
		sampleRows = maxSampleRows
	}
	groups := make([][]int, t.NumCols())
	sizes := make([]int, t.NumCols())
	for c := range groups {
		groups[c] = []int{c}
		sizes[c] = mustGzipSize(t, groups[c], sampleRows)
	}
	for len(groups) > 1 {
		bestI, bestGain, bestSize := -1, 0, 0
		for i := 0; i+1 < len(groups); i++ {
			merged := append(append([]int{}, groups[i]...), groups[i+1]...)
			size := mustGzipSize(t, merged, sampleRows)
			if gain := sizes[i] + sizes[i+1] - size; gain > bestGain {
				bestI, bestGain, bestSize = i, gain, size
			}
		}
		if bestI < 0 {
			break
		}
		groups[bestI] = append(groups[bestI], groups[bestI+1]...)
		sizes[bestI] = bestSize
		groups = append(groups[:bestI+1], groups[bestI+2:]...)
		sizes = append(sizes[:bestI+1], sizes[bestI+2:]...)
	}
	return groups
}

func mustGzipSize(t *table.Table, cols []int, rows int) int {
	payload, err := gzipGroup(t, cols, 0, rows)
	if err != nil {
		panic("pzipref: sizing group: " + err.Error())
	}
	return len(payload)
}

// gzipGroup serializes rows [lo, hi) of the given columns row-major and
// deflates them.
func gzipGroup(t *table.Table, cols []int, lo, hi int) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(zw)
	var b4 [4]byte
	for r := lo; r < hi; r++ {
		for _, c := range cols {
			col := t.Col(c)
			if col.Kind == table.Numeric {
				binary.LittleEndian.PutUint32(b4[:], math.Float32bits(float32(col.Floats[r])))
				if _, err := bw.Write(b4[:]); err != nil {
					return nil, err
				}
				continue
			}
			if err := putUvarint(bw, uint64(col.Codes[r])); err != nil {
				return nil, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress reconstructs a table written by Compress, preserving row
// order.
func Decompress(data []byte) (*table.Table, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("pzipref: bad magic")
	}
	br := bufio.NewReader(bytes.NewReader(data[len(magic):]))
	schema, dicts, err := readSchema(br)
	if err != nil {
		return nil, err
	}
	ncols := len(schema)
	nrowsU, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("pzipref: reading row count: %w", err)
	}
	if nrowsU > 1<<34 {
		return nil, fmt.Errorf("pzipref: implausible row count %d", nrowsU)
	}
	nrows := int(nrowsU)
	ngroups, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("pzipref: reading group count: %w", err)
	}
	if ngroups > uint64(ncols) {
		return nil, fmt.Errorf("pzipref: %d groups for %d columns", ngroups, ncols)
	}
	groups := make([][]int, ngroups)
	seen := make([]bool, ncols)
	for gi := range groups {
		glen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if glen == 0 || glen > uint64(ncols) {
			return nil, fmt.Errorf("pzipref: bad group size %d", glen)
		}
		g := make([]int, glen)
		for i := range g {
			c, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if c >= uint64(ncols) || seen[c] {
				return nil, fmt.Errorf("pzipref: bad group member %d", c)
			}
			seen[c] = true
			g[i] = int(c)
		}
		groups[gi] = g
	}
	for c, s := range seen {
		if !s {
			return nil, fmt.Errorf("pzipref: column %d missing from all groups", c)
		}
	}

	cols := make([]*table.Column, ncols)
	initialCap := nrows
	if initialCap > 1<<16 {
		initialCap = 1 << 16
	}
	for i := range cols {
		cols[i] = &table.Column{Kind: schema[i].Kind, Dict: dicts[i]}
		if schema[i].Kind == table.Numeric {
			cols[i].Floats = make([]float64, 0, initialCap)
		} else {
			cols[i].Codes = make([]int32, 0, initialCap)
		}
	}
	for _, g := range groups {
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("pzipref: reading group payload length: %w", err)
		}
		zr, err := gzip.NewReader(io.LimitReader(br, int64(plen)))
		if err != nil {
			return nil, fmt.Errorf("pzipref: opening group payload: %w", err)
		}
		zbr := bufio.NewReader(zr)
		var b4 [4]byte
		for r := 0; r < nrows; r++ {
			for _, c := range g {
				if schema[c].Kind == table.Numeric {
					if _, err := io.ReadFull(zbr, b4[:]); err != nil {
						zr.Close()
						return nil, fmt.Errorf("pzipref: reading group row %d: %w", r, err)
					}
					cols[c].Floats = append(cols[c].Floats,
						float64(math.Float32frombits(binary.LittleEndian.Uint32(b4[:]))))
					continue
				}
				code, err := binary.ReadUvarint(zbr)
				if err != nil {
					zr.Close()
					return nil, fmt.Errorf("pzipref: reading group row %d: %w", r, err)
				}
				if code >= uint64(len(dicts[c])) {
					zr.Close()
					return nil, fmt.Errorf("pzipref: code %d outside dictionary of column %d", code, c)
				}
				cols[c].Codes = append(cols[c].Codes, int32(code))
			}
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("pzipref: closing group payload: %w", err)
		}
	}
	return table.New(schema, cols)
}

// --- schema helpers (same layout as the raw table format) ---

func writeSchema(bw *bufio.Writer, t *table.Table) error {
	if err := putUvarint(bw, uint64(t.NumCols())); err != nil {
		return err
	}
	for i := 0; i < t.NumCols(); i++ {
		a := t.Attr(i)
		if err := putString(bw, a.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(a.Kind)); err != nil {
			return err
		}
		if a.Kind == table.Categorical {
			dict := t.Col(i).Dict
			if err := putUvarint(bw, uint64(len(dict))); err != nil {
				return err
			}
			for _, s := range dict {
				if err := putString(bw, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func readSchema(br *bufio.Reader) (table.Schema, [][]string, error) {
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("pzipref: reading column count: %w", err)
	}
	if ncols == 0 || ncols > 1<<16 {
		return nil, nil, fmt.Errorf("pzipref: implausible column count %d", ncols)
	}
	schema := make(table.Schema, ncols)
	dicts := make([][]string, ncols)
	for i := range schema {
		name, err := getString(br)
		if err != nil {
			return nil, nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, nil, err
		}
		kind := table.Kind(kb)
		if kind != table.Numeric && kind != table.Categorical {
			return nil, nil, fmt.Errorf("pzipref: unknown kind %d", kb)
		}
		schema[i] = table.Attribute{Name: name, Kind: kind}
		if kind == table.Categorical {
			dlen, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			if dlen > 1<<22 {
				return nil, nil, fmt.Errorf("pzipref: implausible dictionary size %d", dlen)
			}
			dict := make([]string, 0, minInt(int(dlen), 1<<12))
			for d := uint64(0); d < dlen; d++ {
				s, err := getString(br)
				if err != nil {
					return nil, nil, err
				}
				dict = append(dict, s)
			}
			dicts[i] = dict
		}
	}
	return schema, dicts, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func putUvarint(bw *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := bw.Write(buf[:n])
	return err
}

func putString(bw *bufio.Writer, s string) error {
	if err := putUvarint(bw, uint64(len(s))); err != nil {
		return err
	}
	_, err := bw.WriteString(s)
	return err
}

func getString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("pzipref: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
