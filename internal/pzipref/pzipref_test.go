package pzipref

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gzipref"
	"repro/internal/table"
)

func testTable(rng *rand.Rand, n int) *table.Table {
	// Columns 0 and 1 are strongly correlated (good merge candidates);
	// column 2 is independent noise, column 3 categorical.
	schema := table.Schema{
		{Name: "a", Kind: table.Numeric},
		{Name: "b", Kind: table.Numeric},
		{Name: "noise", Kind: table.Numeric},
		{Name: "c", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	cats := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		v := float64(rng.Intn(40))
		b.MustAppendRow(v, v+1, float64(rng.Intn(10000)), cats[rng.Intn(3)])
	}
	return b.MustBuild()
}

func TestRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := testTable(rng, 800)
	data, err := Compress(tb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("pzip round trip changed the table")
	}
}

func TestRoundTripOnDatasets(t *testing.T) {
	for name, tb := range map[string]*table.Table{
		"census": datagen.Census(500, 2),
		"cdr":    datagen.CDR(500, 2),
	} {
		data, err := Compress(tb)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Decompress(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !table.Equal(tb, back) {
			t.Errorf("%s: round trip changed the table", name)
		}
	}
}

func TestGroupingMergesCorrelatedColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := testTable(rng, 1500)
	groups := planGroups(tb)
	// Columns 0 and 1 (b = a+1) must land in the same group.
	var groupOfA, groupOfB int = -1, -1
	for gi, g := range groups {
		for _, c := range g {
			if c == 0 {
				groupOfA = gi
			}
			if c == 1 {
				groupOfB = gi
			}
		}
	}
	if groupOfA != groupOfB {
		t.Errorf("correlated columns split across groups %d and %d: %v",
			groupOfA, groupOfB, groups)
	}
	// Every column appears exactly once.
	seen := map[int]int{}
	for _, g := range groups {
		for _, c := range g {
			seen[c]++
		}
	}
	for c := 0; c < tb.NumCols(); c++ {
		if seen[c] != 1 {
			t.Errorf("column %d appears %d times in grouping", c, seen[c])
		}
	}
}

func TestBeatsPlainGzipOnGroupableData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tb := testTable(rng, 4000)
	pz, err := Compress(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against unsorted row-wise gzip (grouping is pzip's edge;
	// gzipref's lexicographic sort is a different lever).
	gz, err := gzipref.CompressUnsorted(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(pz) > len(gz)*11/10 {
		t.Errorf("pzip %d B much worse than plain gzip %d B", len(pz), len(gz))
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := testTable(rng, 100)
	data, err := Compress(tb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(nil); err == nil {
		t.Error("Decompress accepted empty input")
	}
	if _, err := Decompress(data[:len(data)/3]); err == nil {
		t.Error("Decompress accepted truncated input")
	}
	bad := append([]byte(nil), data...)
	bad[1] ^= 0xFF
	if _, err := Decompress(bad); err == nil {
		t.Error("Decompress accepted corrupted magic")
	}
}

func TestSingleColumnTable(t *testing.T) {
	b := table.MustBuilder(table.Schema{{Name: "only", Kind: table.Numeric}})
	for i := 0; i < 50; i++ {
		b.MustAppendRow(float64(i % 5))
	}
	tb := b.MustBuild()
	data, err := Compress(tb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("single-column round trip failed")
	}
}
