package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/table"
)

// ParsePredicate parses a filter expression against the given schema and
// returns the bound predicate. Grammar:
//
//	expr  := and ('||' and)*
//	and   := unary ('&&' unary)*
//	unary := '!' unary | '(' expr ')' | cmp
//	cmp   := IDENT op value | IDENT 'in' '(' value (',' value)* ')'
//	op    := '==' '!=' '<' '<=' '>' '>='
//
// Values compare numerically against numeric attributes and as strings
// (optionally single-quoted) against categorical attributes; categorical
// attributes admit only ==, != and in. An empty expression yields a nil
// predicate (match all).
func ParsePredicate(expr string, schema table.Schema) (Predicate, error) {
	if strings.TrimSpace(expr) == "" {
		return nil, nil
	}
	p := &parser{schema: schema}
	if err := p.tokenize(expr); err != nil {
		return nil, err
	}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.tokens) {
		return nil, fmt.Errorf("query: unexpected %q", p.tokens[p.pos].text)
	}
	return pred, nil
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokOp            // == != < <= > >= && || ! ( ) ,
	tokValue         // number or quoted string
)

type token struct {
	kind tokKind
	text string
}

type parser struct {
	schema table.Schema
	tokens []token
	pos    int
}

func (p *parser) tokenize(s string) error {
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '\'':
			j := strings.IndexByte(s[i+1:], '\'')
			if j < 0 {
				return fmt.Errorf("query: unterminated string at %q", s[i:])
			}
			p.tokens = append(p.tokens, token{tokValue, s[i+1 : i+1+j]})
			i += j + 2
		case strings.ContainsRune("()!,", rune(c)):
			if c == '!' && i+1 < len(s) && s[i+1] == '=' {
				p.tokens = append(p.tokens, token{tokOp, "!="})
				i += 2
				break
			}
			p.tokens = append(p.tokens, token{tokOp, string(c)})
			i++
		case c == '&' || c == '|':
			if i+1 >= len(s) || s[i+1] != c {
				return fmt.Errorf("query: stray %q (use %s%s)", c, string(c), string(c))
			}
			p.tokens = append(p.tokens, token{tokOp, s[i : i+2]})
			i += 2
		case c == '=' || c == '<' || c == '>':
			op := string(c)
			if i+1 < len(s) && s[i+1] == '=' {
				op += "="
				i++
			}
			if op == "=" {
				op = "==" // tolerate single '='
			}
			p.tokens = append(p.tokens, token{tokOp, op})
			i++
		default:
			j := i
			for j < len(s) && !unicode.IsSpace(rune(s[j])) &&
				!strings.ContainsRune("()!,&|=<>'", rune(s[j])) {
				j++
			}
			if j == i {
				return fmt.Errorf("query: unexpected character %q", c)
			}
			word := s[i:j]
			if _, err := strconv.ParseFloat(word, 64); err == nil {
				p.tokens = append(p.tokens, token{tokValue, word})
			} else {
				p.tokens = append(p.tokens, token{tokIdent, word})
			}
			i = j
		}
	}
	return nil
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.tokens) {
		return token{}, false
	}
	return p.tokens[p.pos], true
}

func (p *parser) accept(kind tokKind, text string) bool {
	t, ok := p.peek()
	if ok && t.kind == kind && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Predicate{left}
	for p.accept(tokOp, "||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return left, nil
	}
	return Or(terms...), nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Predicate{left}
	for p.accept(tokOp, "&&") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return left, nil
	}
	return And(terms...), nil
}

func (p *parser) parseUnary() (Predicate, error) {
	if p.accept(tokOp, "!") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(inner), nil
	}
	if p.accept(tokOp, "(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokOp, ")") {
			return nil, fmt.Errorf("query: missing ')'")
		}
		return inner, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Predicate, error) {
	t, ok := p.peek()
	if !ok || t.kind != tokIdent {
		return nil, fmt.Errorf("query: expected column name, got %q", t.text)
	}
	p.pos++
	col := t.text
	idx := p.schema.Index(col)
	if idx < 0 {
		return nil, fmt.Errorf("query: unknown column %q", col)
	}
	kind := p.schema[idx].Kind

	// IN list.
	if it, ok := p.peek(); ok && it.kind == tokIdent && strings.EqualFold(it.text, "in") {
		p.pos++
		if kind != table.Categorical {
			return nil, fmt.Errorf("query: 'in' applies to categorical columns, %q is numeric", col)
		}
		if !p.accept(tokOp, "(") {
			return nil, fmt.Errorf("query: expected '(' after in")
		}
		var values []string
		for {
			v, ok := p.peek()
			if !ok || (v.kind != tokValue && v.kind != tokIdent) {
				return nil, fmt.Errorf("query: expected value in 'in' list")
			}
			p.pos++
			values = append(values, v.text)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if !p.accept(tokOp, ")") {
			return nil, fmt.Errorf("query: missing ')' in 'in' list")
		}
		return CatIn(col, values...), nil
	}

	opTok, ok := p.peek()
	if !ok || opTok.kind != tokOp {
		return nil, fmt.Errorf("query: expected operator after %q", col)
	}
	p.pos++
	val, ok := p.peek()
	if !ok || (val.kind != tokValue && val.kind != tokIdent) {
		return nil, fmt.Errorf("query: expected value after %q %s", col, opTok.text)
	}
	p.pos++

	if kind == table.Categorical {
		switch opTok.text {
		case "==":
			return CatEq(col, val.text), nil
		case "!=":
			return Not(CatEq(col, val.text)), nil
		default:
			return nil, fmt.Errorf("query: operator %s not defined for categorical column %q", opTok.text, col)
		}
	}
	f, err := strconv.ParseFloat(val.text, 64)
	if err != nil {
		return nil, fmt.Errorf("query: column %q is numeric, %q is not a number", col, val.text)
	}
	var op CmpOp
	switch opTok.text {
	case "<":
		op = Lt
	case "<=":
		op = Le
	case ">":
		op = Gt
	case ">=":
		op = Ge
	case "==":
		op = Eq
	case "!=":
		op = Ne
	default:
		return nil, fmt.Errorf("query: unknown operator %q", opTok.text)
	}
	return NumCmp(col, op, f), nil
}
