package query

import (
	"testing"

	"repro/internal/table"
)

func parseSchema() table.Schema {
	return table.Schema{
		{Name: "x", Kind: table.Numeric},
		{Name: "y", Kind: table.Numeric},
		{Name: "g", Kind: table.Categorical},
	}
}

// run a parsed predicate against the exactTable rows and count matches.
func countMatches(t *testing.T, expr string) int {
	t.Helper()
	tb := exactTable(t)
	p, err := ParsePredicate(expr, tb.Schema())
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	res, err := Run(tb, nil, Query{Agg: Count, Where: p})
	if err != nil {
		t.Fatalf("run %q: %v", expr, err)
	}
	return int(res.Groups[0].Value)
}

func TestParseNumericComparisons(t *testing.T) {
	cases := []struct {
		expr string
		want int
	}{
		{"x > 3", 2},
		{"x >= 3", 3},
		{"x < 2", 1},
		{"x <= 2", 2},
		{"x == 3", 1},
		{"x != 3", 4},
		{"y > 15 && y < 45", 3},
		{"x < 2 || x > 4", 2},
		{"!(x >= 2)", 1},
		{"(x > 1) && (g == 'b' || y <= 20)", 4},
		{"g == 'a'", 2},
		{"g != 'a'", 3},
		{"g in ('a', 'b')", 5},
		{"g in ('a')", 2},
		{"x = 3", 1}, // single '=' tolerated
	}
	for _, c := range cases {
		if got := countMatches(t, c.expr); got != c.want {
			t.Errorf("%q matched %d rows, want %d", c.expr, got, c.want)
		}
	}
}

func TestParseEmptyMatchesAll(t *testing.T) {
	p, err := ParsePredicate("   ", parseSchema())
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Error("empty expression should yield nil predicate")
	}
}

func TestParseBareWordAsCategoricalValue(t *testing.T) {
	// Unquoted values bind as strings for categorical columns.
	if got := countMatches(t, "g == b"); got != 3 {
		t.Errorf("g == b matched %d, want 3", got)
	}
}

func TestParseErrors(t *testing.T) {
	schema := parseSchema()
	cases := []string{
		"z > 1",              // unknown column
		"x >",                // missing value
		"> 1",                // missing column
		"g > 'a'",            // ordered op on categorical
		"x in (1, 2)",        // in on numeric
		"x == 'abc'",         // non-numeric value for numeric column
		"(x > 1",             // missing paren
		"x > 1 && ",          // dangling connective
		"x > 1 & y < 2",      // single &
		"g == 'unterminated", // unterminated string
		"x > 1 extra",        // trailing tokens
		"g in 'a'",           // in without parens
		"g in ()",            // empty in list
		"x ~ 3",              // unknown char
	}
	for _, expr := range cases {
		if _, err := ParsePredicate(expr, schema); err == nil {
			t.Errorf("ParsePredicate(%q) accepted invalid input", expr)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// && binds tighter than ||: a || b && c == a || (b && c).
	tb := exactTable(t)
	p, err := ParsePredicate("x == 1 || x >= 4 && g == 'b'", tb.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tb, nil, Query{Agg: Count, Where: p})
	if err != nil {
		t.Fatal(err)
	}
	// x==1 -> {1}; x>=4 && g=b -> {4,5}. Total 3.
	if res.Groups[0].Value != 3 {
		t.Errorf("precedence: matched %g rows, want 3", res.Groups[0].Value)
	}
}
