// Package query answers aggregate queries over SPARTAN-decompressed
// tables with guaranteed error intervals — the paper's motivating use
// case (§1): analysts accept approximate answers as long as the system
// bounds the approximation error.
//
// Every value in a decompressed table deviates from the original by at
// most its attribute tolerance (numeric) or differs in at most a
// tolerance fraction of rows (categorical). The engine propagates those
// bounds through filtering and aggregation:
//
//   - numeric predicates evaluate to three-valued logic: a row whose
//     reconstructed value is farther than the tolerance from the
//     threshold matches (or not) definitely; otherwise it is uncertain;
//   - categorical predicates are exact per row, but each referenced
//     categorical attribute with tolerance e contributes a global "flip
//     budget" of ⌊e·N⌋ rows whose membership may be wrong;
//   - aggregates return a point estimate plus a closed interval [Lo, Hi]
//     that is guaranteed to contain the value the query would produce on
//     the original table.
//
// Intervals are sound but not always tight (interval arithmetic treats
// SUM and COUNT as independent when dividing for AVG).
package query

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/table"
)

// tri is three-valued predicate logic.
type tri int8

const (
	no tri = iota
	maybe
	yes
)

func triAnd(a, b tri) tri {
	if a < b {
		return a
	}
	return b
}

func triOr(a, b tri) tri {
	if a > b {
		return a
	}
	return b
}

func triNot(a tri) tri {
	switch a {
	case yes:
		return no
	case no:
		return yes
	default:
		return maybe
	}
}

// CmpOp is a numeric comparison operator.
type CmpOp int

const (
	// Lt is <, Le is <=, Gt is >, Ge is >=, Eq is ==, Ne is !=.
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "=="
	case Ne:
		return "!="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Predicate filters rows under three-valued logic.
type Predicate interface {
	eval(ctx *evalCtx, row int) tri
	// columns reports the referenced attribute names (for flip budgets
	// and validation).
	columns() []string
}

type evalCtx struct {
	t     *table.Table
	tol   map[string]float64 // resolved tolerance per attribute name
	cols  map[string]int     // name -> column index
	scope *Scope             // nil when t is the whole dataset
}

// totalRows is the dataset-wide row count flip budgets scale with: the
// scope's when t is a pruned subset, t's own otherwise.
func (c *evalCtx) totalRows() int {
	if c.scope != nil && c.scope.TotalRows > 0 {
		return c.scope.TotalRows
	}
	return c.t.NumRows()
}

// colBounds returns the dataset-wide value bounds of a numeric column:
// the scope's when present, the observed column min/max otherwise.
func (c *evalCtx) colBounds(column string) (lo, hi float64) {
	if c.scope != nil {
		if b, ok := c.scope.Ranges[column]; ok {
			return b[0], b[1]
		}
	}
	return c.t.Col(c.cols[column]).MinMax()
}

// Scope widens a query's frame of reference beyond the rows of the table
// it runs on. When the table is a pruned subset of a larger archive,
// soundness demands that quantile tolerances, categorical flip budgets
// and flip-extreme contributions be taken from the whole archive — the
// surviving rows' narrower ranges and smaller count would understate
// the error bounds.
type Scope struct {
	// TotalRows is the archive-wide row count for categorical flip
	// budgets; zero falls back to the table's own row count.
	TotalRows int
	// Ranges maps numeric attribute names to archive-wide [lo, hi] value
	// bounds, used to resolve quantile tolerances and to bound what a
	// flipped-in row could contribute. Attributes absent from the map
	// fall back to the table's observed range.
	Ranges map[string][2]float64
}

// NumCmp compares a numeric attribute against a constant.
func NumCmp(column string, op CmpOp, value float64) Predicate {
	return &numCmp{column: column, op: op, value: value}
}

type numCmp struct {
	column string
	op     CmpOp
	value  float64
}

func (p *numCmp) columns() []string { return []string{p.column} }

func (p *numCmp) eval(ctx *evalCtx, row int) tri {
	ci := ctx.cols[p.column]
	x := ctx.t.Float(row, ci)
	e := ctx.tol[p.column]
	lo, hi := x-e, x+e // interval certain to contain the original value
	switch p.op {
	case Lt:
		return intervalCmp(hi < p.value, lo >= p.value)
	case Le:
		return intervalCmp(hi <= p.value, lo > p.value)
	case Gt:
		return intervalCmp(lo > p.value, hi <= p.value)
	case Ge:
		return intervalCmp(lo >= p.value, hi < p.value)
	case Eq:
		if e == 0 {
			return intervalCmp(x == p.value, x != p.value)
		}
		return intervalCmp(false, lo > p.value || hi < p.value)
	case Ne:
		if e == 0 {
			return intervalCmp(x != p.value, x == p.value)
		}
		return intervalCmp(lo > p.value || hi < p.value, false)
	default:
		return maybe
	}
}

func intervalCmp(definitelyTrue, definitelyFalse bool) tri {
	switch {
	case definitelyTrue:
		return yes
	case definitelyFalse:
		return no
	default:
		return maybe
	}
}

// CatIn tests membership of a categorical attribute in a value set.
func CatIn(column string, values ...string) Predicate {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[v] = true
	}
	return &catIn{column: column, set: set}
}

// CatEq tests equality of a categorical attribute.
func CatEq(column, value string) Predicate { return CatIn(column, value) }

type catIn struct {
	column string
	set    map[string]bool
}

func (p *catIn) columns() []string { return []string{p.column} }

func (p *catIn) eval(ctx *evalCtx, row int) tri {
	ci := ctx.cols[p.column]
	if p.set[ctx.t.CatString(row, ci)] {
		return yes
	}
	return no
}

// And conjoins predicates.
func And(ps ...Predicate) Predicate { return &logical{ps: ps, or: false} }

// Or disjoins predicates.
func Or(ps ...Predicate) Predicate { return &logical{ps: ps, or: true} }

type logical struct {
	ps []Predicate
	or bool
}

func (p *logical) columns() []string {
	var out []string
	for _, q := range p.ps {
		out = append(out, q.columns()...)
	}
	return out
}

func (p *logical) eval(ctx *evalCtx, row int) tri {
	if len(p.ps) == 0 {
		if p.or {
			return no
		}
		return yes
	}
	acc := p.ps[0].eval(ctx, row)
	for _, q := range p.ps[1:] {
		if p.or {
			acc = triOr(acc, q.eval(ctx, row))
			if acc == yes {
				return yes
			}
		} else {
			acc = triAnd(acc, q.eval(ctx, row))
			if acc == no {
				return no
			}
		}
	}
	return acc
}

// Not negates a predicate.
func Not(p Predicate) Predicate { return &negation{p} }

type negation struct{ p Predicate }

func (n *negation) columns() []string          { return n.p.columns() }
func (n *negation) eval(c *evalCtx, r int) tri { return triNot(n.p.eval(c, r)) }

// AggKind selects the aggregate function.
type AggKind int

const (
	// Count counts matching rows; Sum/Avg/Min/Max aggregate a numeric
	// column over them.
	Count AggKind = iota
	Sum
	Avg
	Min
	Max
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(a))
	}
}

// Query is one aggregate query: Agg(Column) WHERE Where GROUP BY GroupBy.
type Query struct {
	Agg    AggKind
	Column string // aggregated numeric column; empty for Count
	Where  Predicate
	// GroupBy optionally names a categorical column; results carry one
	// group per observed value.
	GroupBy string
}

// Group is the result for one group (or the single implicit group).
type Group struct {
	Key string // group-by value; "" without GROUP BY

	// Value is the point estimate computed from the reconstructed data.
	Value float64
	// Lo and Hi bound the value the same query would produce on the
	// original table.
	Lo, Hi float64

	// Rows counts definite matches; UncertainRows counts rows whose
	// membership depends on within-tolerance perturbations (including the
	// categorical flip budget).
	Rows          int
	UncertainRows int
}

// Result is the full answer.
type Result struct {
	Groups []Group
}

// Run executes the query against a (typically decompressed) table with
// the tolerance vector it was compressed under. A nil Where matches all
// rows. Tolerances in quantile form are resolved against t.
func Run(t *table.Table, tol table.Tolerances, q Query) (*Result, error) {
	return RunScoped(t, tol, q, nil)
}

// RunScoped is Run with an explicit dataset scope: when t is a pruned
// subset of a larger dataset (zone-map-refuted archive segments were
// skipped), scope supplies the dataset-wide row count and value ranges
// so the returned intervals still bound the answer the whole original
// dataset would give. A nil scope behaves exactly like Run.
func RunScoped(t *table.Table, tol table.Tolerances, q Query, scope *Scope) (*Result, error) {
	if tol == nil {
		tol = table.ZeroTolerances(t)
	}
	resolved, err := resolveScoped(t, tol, scope)
	if err != nil {
		return nil, err
	}
	ctx := &evalCtx{
		t:     t,
		tol:   map[string]float64{},
		cols:  map[string]int{},
		scope: scope,
	}
	for i := 0; i < t.NumCols(); i++ {
		name := t.Attr(i).Name
		ctx.cols[name] = i
		ctx.tol[name] = resolved[i].Value
	}
	if err := validate(ctx, q); err != nil {
		return nil, err
	}

	// Categorical flip budget from predicate and group-by columns.
	flips := flipBudget(ctx, q)

	// Partition rows by group and match state.
	type bucket struct {
		key      string
		def, unc []int
	}
	buckets := map[string]*bucket{}
	order := []string{}
	groupCol := -1
	if q.GroupBy != "" {
		groupCol = ctx.cols[q.GroupBy]
	}
	for r := 0; r < t.NumRows(); r++ {
		m := yes
		if q.Where != nil {
			m = q.Where.eval(ctx, r)
		}
		if m == no {
			continue
		}
		key := ""
		if groupCol >= 0 {
			key = t.CatString(r, groupCol)
		}
		b := buckets[key]
		if b == nil {
			b = &bucket{key: key}
			buckets[key] = b
			order = append(order, key)
		}
		if m == yes {
			b.def = append(b.def, r)
		} else {
			b.unc = append(b.unc, r)
		}
	}
	sort.Strings(order)

	res := &Result{}
	for _, key := range order {
		b := buckets[key]
		g, err := aggregate(ctx, q, b.key, b.def, b.unc, flips)
		if err != nil {
			return nil, err
		}
		res.Groups = append(res.Groups, g)
	}
	if len(res.Groups) == 0 && q.GroupBy == "" {
		// An empty selection still yields one (empty) group.
		g, err := aggregate(ctx, q, "", nil, nil, flips)
		if err != nil {
			return nil, err
		}
		res.Groups = append(res.Groups, g)
	}
	return res, nil
}

// resolveScoped converts quantile tolerances to absolute bounds against
// the scope's dataset-wide ranges where known, the table's observed
// ranges otherwise. Resolving against the widest range keeps the
// absolute bound identical to what an unpruned run would use.
func resolveScoped(t *table.Table, tol table.Tolerances, scope *Scope) (table.Tolerances, error) {
	if scope == nil || scope.Ranges == nil {
		return tol.Resolve(t)
	}
	ranges := make([]float64, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		if t.Attr(i).Kind != table.Numeric {
			continue
		}
		if b, ok := scope.Ranges[t.Attr(i).Name]; ok {
			ranges[i] = b[1] - b[0]
		} else {
			ranges[i] = t.Col(i).Range()
		}
	}
	return tol.ResolveRanges(t.Schema(), ranges)
}

func validate(ctx *evalCtx, q Query) error {
	check := func(name string) error {
		if _, ok := ctx.cols[name]; !ok {
			return fmt.Errorf("query: unknown column %q", name)
		}
		return nil
	}
	if q.Agg != Count {
		if q.Column == "" {
			return fmt.Errorf("query: %v requires a column", q.Agg)
		}
		if err := check(q.Column); err != nil {
			return err
		}
		if ctx.t.Attr(ctx.cols[q.Column]).Kind != table.Numeric {
			return fmt.Errorf("query: %v needs a numeric column, %q is categorical", q.Agg, q.Column)
		}
	}
	if q.GroupBy != "" {
		if err := check(q.GroupBy); err != nil {
			return err
		}
		if ctx.t.Attr(ctx.cols[q.GroupBy]).Kind != table.Categorical {
			return fmt.Errorf("query: GROUP BY needs a categorical column, %q is numeric", q.GroupBy)
		}
	}
	if q.Where != nil {
		for _, name := range q.Where.columns() {
			if err := check(name); err != nil {
				return err
			}
			ci := ctx.cols[name]
			// numCmp on categorical or CatIn on numeric are type errors.
			// The predicate types enforce usage implicitly: NumCmp reads
			// Float, CatIn reads CatString; verify kinds up front for
			// clean errors instead of panics.
			_ = ci
		}
		if err := checkPredicateKinds(ctx, q.Where); err != nil {
			return err
		}
	}
	return nil
}

func checkPredicateKinds(ctx *evalCtx, p Predicate) error {
	switch v := p.(type) {
	case *numCmp:
		if ctx.t.Attr(ctx.cols[v.column]).Kind != table.Numeric {
			return fmt.Errorf("query: numeric comparison on categorical column %q", v.column)
		}
	case *catIn:
		if ctx.t.Attr(ctx.cols[v.column]).Kind != table.Categorical {
			return fmt.Errorf("query: categorical predicate on numeric column %q", v.column)
		}
	case *logical:
		for _, q := range v.ps {
			if err := checkPredicateKinds(ctx, q); err != nil {
				return err
			}
		}
	case *negation:
		return checkPredicateKinds(ctx, v.p)
	}
	return nil
}

// flipBudget sums ⌊e·N⌋ over the categorical attributes the query's
// membership decisions depend on: each such attribute may be wrong in up
// to that many rows, each of which could enter or leave the selection (or
// switch groups).
func flipBudget(ctx *evalCtx, q Query) int {
	seen := map[string]bool{}
	total := 0
	addCol := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		ci := ctx.cols[name]
		if ctx.t.Attr(ci).Kind == table.Categorical {
			total += int(ctx.tol[name] * float64(ctx.totalRows()))
		}
	}
	if q.Where != nil {
		for _, name := range q.Where.columns() {
			addCol(name)
		}
	}
	if q.GroupBy != "" {
		addCol(q.GroupBy)
	}
	return total
}

// aggregate computes the point estimate and the sound interval for one
// group.
func aggregate(ctx *evalCtx, q Query, key string, def, unc []int, flips int) (Group, error) {
	g := Group{Key: key, Rows: len(def), UncertainRows: len(unc) + flips}
	switch q.Agg {
	case Count:
		g.Value = float64(len(def))
		g.Lo = math.Max(0, float64(len(def)-flips))
		g.Hi = float64(len(def) + len(unc) + flips)
	case Sum:
		sumInterval(ctx, q.Column, def, unc, flips, &g)
	case Avg:
		var s Group
		sumInterval(ctx, q.Column, def, unc, flips, &s)
		cntLo := math.Max(0, float64(len(def)-flips))
		cntHi := float64(len(def) + len(unc) + flips)
		if len(def) == 0 {
			g.Value = math.NaN()
		} else {
			g.Value = s.Value / float64(len(def))
		}
		g.Lo, g.Hi = divideInterval(s.Lo, s.Hi, cntLo, cntHi)
	case Min:
		extremeInterval(ctx, q.Column, def, unc, flips, true, &g)
	case Max:
		extremeInterval(ctx, q.Column, def, unc, flips, false, &g)
	default:
		return g, fmt.Errorf("query: unknown aggregate %d", q.Agg)
	}
	return g, nil
}

// sumInterval fills g with the SUM estimate and bounds: definite rows
// contribute their full value interval; uncertain rows contribute only
// when that widens the bound; flip-budget rows may add or remove the
// most extreme definite contributions.
func sumInterval(ctx *evalCtx, column string, def, unc []int, flips int, g *Group) {
	ci := ctx.cols[column]
	e := ctx.tol[column]
	col := ctx.t.Col(ci)
	sum, lo, hi := 0.0, 0.0, 0.0
	var defVals []float64
	for _, r := range def {
		v := col.Floats[r]
		sum += v
		lo += v - e
		hi += v + e
		defVals = append(defVals, v)
	}
	for _, r := range unc {
		v := col.Floats[r]
		lo += math.Min(0, v-e)
		hi += math.Max(0, v+e)
	}
	// Categorical flips: up to `flips` arbitrary rows of the dataset may
	// enter, and up to `flips` definite members may leave. Bound with the
	// dataset-wide extremes for additions and the most extreme definite
	// values for removals.
	if flips > 0 {
		tLo, tHi := ctx.colBounds(column)
		sort.Float64s(defVals)
		for i := 0; i < flips; i++ {
			lo += math.Min(0, tLo-e)
			hi += math.Max(0, tHi+e)
			// Removal of the largest/smallest member values.
			if i < len(defVals) {
				hiVal := defVals[len(defVals)-1-i]
				loVal := defVals[i]
				lo -= math.Max(0, hiVal+e) // removing a large positive shrinks the sum
				hi -= math.Min(0, loVal-e) // removing a negative grows the sum
			}
		}
	}
	g.Value = sum
	g.Lo = lo
	g.Hi = hi
}

// divideInterval returns sound bounds for s/c with s ∈ [sLo, sHi] and
// c ∈ [cLo, cHi], c ≥ 0. A zero possible count yields infinite bounds.
func divideInterval(sLo, sHi, cLo, cHi float64) (float64, float64) {
	if cLo <= 0 {
		if cHi <= 0 {
			return math.NaN(), math.NaN()
		}
		// Count could be arbitrarily small but at least 1 row.
		cLo = 1
	}
	candidates := []float64{sLo / cLo, sLo / cHi, sHi / cLo, sHi / cHi}
	lo, hi := candidates[0], candidates[0]
	for _, c := range candidates[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return lo, hi
}

// extremeInterval fills g for MIN (isMin) or MAX.
func extremeInterval(ctx *evalCtx, column string, def, unc []int, flips int, isMin bool, g *Group) {
	ci := ctx.cols[column]
	e := ctx.tol[column]
	col := ctx.t.Col(ci)
	if len(def) == 0 && len(unc) == 0 {
		g.Value, g.Lo, g.Hi = math.NaN(), math.NaN(), math.NaN()
		return
	}
	best := math.Inf(1)
	if !isMin {
		best = math.Inf(-1)
	}
	for _, r := range def {
		v := col.Floats[r]
		if isMin {
			best = math.Min(best, v)
		} else {
			best = math.Max(best, v)
		}
	}
	g.Value = best
	if len(def) == 0 {
		g.Value = math.NaN()
	}
	// Bounds: uncertain/flipped rows can push the extreme outward but a
	// definite extreme limits how far inward it can be.
	outward := best
	for _, r := range unc {
		v := col.Floats[r]
		if isMin {
			outward = math.Min(outward, v)
		} else {
			outward = math.Max(outward, v)
		}
	}
	if flips > 0 {
		tLo, tHi := ctx.colBounds(column)
		if isMin {
			outward = math.Min(outward, tLo)
		} else {
			outward = math.Max(outward, tHi)
		}
	}
	if isMin {
		g.Lo = outward - e
		g.Hi = best + e
		if flips > 0 && len(def) > 0 {
			// The current minimum row might be a flip mistake; the true
			// minimum could be as high as the (flips+1)-th smallest.
			vals := sortedColumnValues(col, def)
			idx := flips
			if idx >= len(vals) {
				idx = len(vals) - 1
			}
			g.Hi = vals[idx] + e
		}
	} else {
		g.Lo = best - e
		g.Hi = outward + e
		if flips > 0 && len(def) > 0 {
			vals := sortedColumnValues(col, def)
			idx := len(vals) - 1 - flips
			if idx < 0 {
				idx = 0
			}
			g.Lo = vals[idx] - e
		}
	}
	if math.IsNaN(g.Value) {
		g.Lo, g.Hi = math.NaN(), math.NaN()
	}
}

func sortedColumnValues(col *table.Column, rows []int) []float64 {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = col.Floats[r]
	}
	sort.Float64s(vals)
	return vals
}
