package query

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/table"
)

// exactTable builds a small deterministic table for unit tests.
func exactTable(t *testing.T) *table.Table {
	t.Helper()
	schema := table.Schema{
		{Name: "x", Kind: table.Numeric},
		{Name: "y", Kind: table.Numeric},
		{Name: "g", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	rows := [][]any{
		{1.0, 10.0, "a"},
		{2.0, 20.0, "a"},
		{3.0, 30.0, "b"},
		{4.0, 40.0, "b"},
		{5.0, 50.0, "b"},
	}
	for _, r := range rows {
		b.MustAppendRow(r...)
	}
	return b.MustBuild()
}

func TestExactCount(t *testing.T) {
	tb := exactTable(t)
	res, err := Run(tb, nil, Query{Agg: Count, Where: NumCmp("x", Ge, 3)})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	if g.Value != 3 || g.Lo != 3 || g.Hi != 3 {
		t.Errorf("COUNT = %+v, want exactly 3", g)
	}
}

func TestExactAggregates(t *testing.T) {
	tb := exactTable(t)
	cases := []struct {
		agg  AggKind
		want float64
	}{
		{Sum, 120},
		{Avg, 40},
		{Min, 30},
		{Max, 50},
	}
	for _, c := range cases {
		res, err := Run(tb, nil, Query{Agg: c.agg, Column: "y", Where: NumCmp("x", Ge, 3)})
		if err != nil {
			t.Fatal(err)
		}
		g := res.Groups[0]
		if g.Value != c.want || g.Lo != c.want || g.Hi != c.want {
			t.Errorf("%v = %+v, want exactly %g", c.agg, g, c.want)
		}
	}
}

func TestGroupBy(t *testing.T) {
	tb := exactTable(t)
	res, err := Run(tb, nil, Query{Agg: Sum, Column: "y", GroupBy: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	want := map[string]float64{"a": 30, "b": 120}
	for _, g := range res.Groups {
		if g.Value != want[g.Key] {
			t.Errorf("group %q = %g, want %g", g.Key, g.Value, want[g.Key])
		}
	}
}

func TestCategoricalPredicate(t *testing.T) {
	tb := exactTable(t)
	res, err := Run(tb, nil, Query{Agg: Count, Where: CatEq("g", "a")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Value != 2 {
		t.Errorf("COUNT(g=a) = %g, want 2", res.Groups[0].Value)
	}
	res, err = Run(tb, nil, Query{Agg: Count, Where: CatIn("g", "a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Value != 5 {
		t.Errorf("COUNT(g in a,b) = %g, want 5", res.Groups[0].Value)
	}
}

func TestLogicalConnectives(t *testing.T) {
	tb := exactTable(t)
	p := And(NumCmp("x", Ge, 2), Or(CatEq("g", "a"), NumCmp("y", Gt, 45)))
	res, err := Run(tb, nil, Query{Agg: Count, Where: p})
	if err != nil {
		t.Fatal(err)
	}
	// Rows: x>=2 -> {2,3,4,5}; g=a -> {2}; y>45 -> {5}. Union -> {2,5}.
	if res.Groups[0].Value != 2 {
		t.Errorf("COUNT = %g, want 2", res.Groups[0].Value)
	}
	res, err = Run(tb, nil, Query{Agg: Count, Where: Not(p)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Value != 3 {
		t.Errorf("COUNT(not p) = %g, want 3", res.Groups[0].Value)
	}
}

func TestUncertaintyWidensBounds(t *testing.T) {
	tb := exactTable(t)
	tol := table.Tolerances{{Value: 1}, {Value: 5}, {Value: 0}}
	// x >= 3 with ±1: rows with x in (2,4) are uncertain, i.e. x=3 and
	// x=2 and x=4 are uncertain (|x-3| < 1... boundary: x=2 -> hi=3 not
	// < 3 -> uncertain under Ge).
	res, err := Run(tb, tol, Query{Agg: Count, Where: NumCmp("x", Ge, 3)})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	if g.Lo > 2 || g.Hi < 4 {
		t.Errorf("COUNT bounds [%g,%g] too tight for ±1 tolerance", g.Lo, g.Hi)
	}
	if g.Lo > g.Value || g.Value > g.Hi {
		t.Errorf("point estimate %g outside [%g,%g]", g.Value, g.Lo, g.Hi)
	}
}

func TestValidationErrors(t *testing.T) {
	tb := exactTable(t)
	cases := []Query{
		{Agg: Sum},                                      // missing column
		{Agg: Sum, Column: "nope"},                      // unknown column
		{Agg: Sum, Column: "g"},                         // categorical aggregate
		{Agg: Count, GroupBy: "x"},                      // numeric group-by
		{Agg: Count, GroupBy: "nope"},                   // unknown group-by
		{Agg: Count, Where: NumCmp("g", Ge, 1)},         // numeric cmp on categorical
		{Agg: Count, Where: CatEq("x", "v")},            // categorical pred on numeric
		{Agg: Count, Where: NumCmp("missing", Ge, 1)},   // unknown predicate column
		{Agg: Count, Where: Not(CatEq("missing", "v"))}, // nested unknown
	}
	for i, q := range cases {
		if _, err := Run(tb, nil, q); err == nil {
			t.Errorf("case %d: Run accepted invalid query %+v", i, q)
		}
	}
}

func TestEmptySelection(t *testing.T) {
	tb := exactTable(t)
	res, err := Run(tb, nil, Query{Agg: Sum, Column: "y", Where: NumCmp("x", Gt, 100)})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	if g.Value != 0 || g.Rows != 0 {
		t.Errorf("empty SUM = %+v", g)
	}
	res, err = Run(tb, nil, Query{Agg: Min, Column: "y", Where: NumCmp("x", Gt, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Groups[0].Value) {
		t.Errorf("empty MIN = %g, want NaN", res.Groups[0].Value)
	}
}

// --- Soundness: original-table answers always fall inside the bounds ---

// runExact computes the query on the original table with zero tolerances
// (point answers).
func runExact(t *testing.T, tb *table.Table, q Query) map[string]float64 {
	t.Helper()
	res, err := Run(tb, nil, q)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, g := range res.Groups {
		out[g.Key] = g.Value
	}
	return out
}

func TestBoundsSoundAfterCompression(t *testing.T) {
	tb := datagen.CDR(4000, 3)
	frac := 0.05
	tol := table.UniformTolerances(tb, frac, 0)
	var buf bytes.Buffer
	if _, err := core.Compress(&buf, tb, core.Options{Tolerances: tol}); err != nil {
		t.Fatal(err)
	}
	restored, err := core.Decompress(&buf)
	if err != nil {
		t.Fatal(err)
	}

	queries := []Query{
		{Agg: Count, Where: NumCmp("duration_sec", Gt, 200)},
		{Agg: Sum, Column: "charge_cents", Where: NumCmp("duration_sec", Gt, 200)},
		{Agg: Avg, Column: "charge_cents", Where: CatEq("plan", "basic")},
		{Agg: Max, Column: "charge_cents", Where: CatEq("call_type", "local")},
		{Agg: Min, Column: "duration_sec", Where: NumCmp("charge_cents", Ge, 50)},
		{Agg: Sum, Column: "charge_cents", GroupBy: "plan"},
		{Agg: Count, Where: And(CatEq("peak", "peak"), NumCmp("duration_sec", Le, 400)), GroupBy: "call_type"},
	}
	for qi, q := range queries {
		exact := runExact(t, tb, q)
		res, err := Run(restored, tol, q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		for _, g := range res.Groups {
			want, ok := exact[g.Key]
			if !ok {
				// Group exists only in restored data; the flip budget
				// covers it, nothing to compare.
				continue
			}
			if math.IsNaN(want) || math.IsNaN(g.Lo) {
				continue
			}
			if want < g.Lo-1e-6 || want > g.Hi+1e-6 {
				t.Errorf("query %d group %q: exact %g outside bounds [%g, %g] (estimate %g)",
					qi, g.Key, want, g.Lo, g.Hi, g.Value)
			}
		}
	}
}

func TestBoundsSoundProperty(t *testing.T) {
	f := func(seed int64, opByte, colByte uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := datagen.CDR(600, seed)
		frac := 0.02 + float64(opByte%8)/100
		tol := table.UniformTolerances(tb, frac, 0)
		var buf bytes.Buffer
		if _, err := core.Compress(&buf, tb, core.Options{Tolerances: tol, Seed: seed + 1}); err != nil {
			return false
		}
		restored, err := core.Decompress(&buf)
		if err != nil {
			return false
		}
		numCols := []string{"start_hour", "duration_sec", "charge_cents"}
		col := numCols[int(colByte)%len(numCols)]
		op := CmpOp(int(opByte) % 4) // Lt..Ge
		threshold := tb.Col(tb.Schema().Index(col)).Floats[rng.Intn(tb.NumRows())]
		q := Query{
			Agg:    AggKind(int(opByte) % 5),
			Column: "charge_cents",
			Where:  NumCmp(col, op, threshold),
		}
		if q.Agg == Count {
			q.Column = ""
		}
		exactRes, err := Run(tb, nil, q)
		if err != nil {
			return false
		}
		res, err := Run(restored, tol, q)
		if err != nil {
			return false
		}
		want := exactRes.Groups[0].Value
		g := res.Groups[0]
		if math.IsNaN(want) || math.IsNaN(g.Lo) {
			return true
		}
		return want >= g.Lo-1e-6 && want <= g.Hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCategoricalFlipBudget(t *testing.T) {
	// With a nonzero categorical tolerance, counts over that column must
	// widen by the flip budget.
	tb := datagen.Census(2000, 4)
	tol := table.UniformTolerances(tb, 0.01, 0.05)
	res, err := Run(tb, tol, Query{Agg: Count, Where: CatEq("employment", "fulltime")})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	budget := int(0.05 * 2000)
	if g.Hi-g.Value < float64(budget) || g.Value-g.Lo < float64(budget) {
		t.Errorf("flip budget not reflected: value %g bounds [%g, %g], budget %d",
			g.Value, g.Lo, g.Hi, budget)
	}
}

func TestTriLogic(t *testing.T) {
	if triAnd(yes, maybe) != maybe || triAnd(no, maybe) != no || triAnd(yes, yes) != yes {
		t.Error("triAnd wrong")
	}
	if triOr(no, maybe) != maybe || triOr(yes, maybe) != yes || triOr(no, no) != no {
		t.Error("triOr wrong")
	}
	if triNot(yes) != no || triNot(no) != yes || triNot(maybe) != maybe {
		t.Error("triNot wrong")
	}
}

func TestCmpOpAndAggStrings(t *testing.T) {
	ops := map[CmpOp]string{Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "==", Ne: "!="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("CmpOp %d = %q, want %q", op, op.String(), want)
		}
	}
	aggs := map[AggKind]string{Count: "COUNT", Sum: "SUM", Avg: "AVG", Min: "MIN", Max: "MAX"}
	for a, want := range aggs {
		if a.String() != want {
			t.Errorf("AggKind %d = %q, want %q", a, a.String(), want)
		}
	}
}

func TestDivideInterval(t *testing.T) {
	lo, hi := divideInterval(10, 20, 2, 5)
	if lo != 2 || hi != 10 {
		t.Errorf("divideInterval = [%g, %g], want [2, 10]", lo, hi)
	}
	// Zero lower count clamps to one row.
	lo, hi = divideInterval(10, 20, 0, 5)
	if lo != 2 || hi != 20 {
		t.Errorf("divideInterval with cLo=0 = [%g, %g], want [2, 20]", lo, hi)
	}
	// Impossible count.
	lo, hi = divideInterval(10, 20, 0, 0)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("divideInterval with no rows = [%g, %g], want NaN", lo, hi)
	}
	// Negative sums.
	lo, hi = divideInterval(-20, -10, 2, 5)
	if lo != -10 || hi != -2 {
		t.Errorf("divideInterval negative = [%g, %g], want [-10, -2]", lo, hi)
	}
}
