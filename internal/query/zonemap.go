// Zone-map predicate refutation: given per-segment column summaries
// (numeric min/max, categorical membership fingerprints), decide whether
// a predicate could possibly match any row of the segment. Archive
// readers use this to skip decoding segments a WHERE clause provably
// excludes. The logic mirrors the per-row three-valued evaluation at
// interval granularity: a segment is refuted only when every row it
// could contain evaluates to a definite no under the same tolerance the
// row-level engine would apply, so pruning never changes a query's
// definite or uncertain row sets.
package query

import "repro/internal/table"

// ColumnZone bounds what one column of a row segment can contain.
type ColumnZone struct {
	// Kind is the column's attribute kind.
	Kind table.Kind
	// Lo and Hi bound every decoded numeric value of the segment
	// (already widened by the compression tolerance at write time).
	Lo, Hi float64
	// MayContain is a definite-absence test for categorical values:
	// false means no row of the segment holds the value. Nil means
	// unknown (never refute).
	MayContain func(value string) bool
}

// CanMatch reports whether p could match at least one row of a segment
// whose per-column contents are bounded by zones; tol maps column name
// to the resolved absolute tolerance the row-level evaluation will use.
// It errs toward true: only a provable all-rows-definitely-fail verdict
// returns false, and unknown columns or nil zone lookups never refute.
func CanMatch(p Predicate, zones func(column string) (ColumnZone, bool), tol map[string]float64) bool {
	if p == nil || zones == nil {
		return true
	}
	return zoneEval(p, zones, tol) != no
}

// zoneEval evaluates p over a whole segment: yes when every possible row
// matches, no when none can, maybe otherwise. Numeric comparisons apply
// the row evaluator's x±e interval logic at the zone's endpoints;
// categorical membership refutes only at zero tolerance, because a flip
// budget lets rows smuggle values the fingerprint never saw.
func zoneEval(p Predicate, zones func(string) (ColumnZone, bool), tol map[string]float64) tri {
	switch v := p.(type) {
	case *numCmp:
		z, ok := zones(v.column)
		if !ok || z.Kind != table.Numeric {
			return maybe
		}
		e := tol[v.column]
		// Every row's certain interval [x−e, x+e] lies within
		// [z.Lo−e, z.Hi+e]; the comparisons below are the row evaluator's
		// conditions applied to those envelope endpoints, so "yes" means
		// every row is a definite match and "no" means every row is a
		// definite non-match.
		lo, hi := z.Lo-e, z.Hi+e
		switch v.op {
		case Lt:
			return intervalCmp(hi < v.value, lo >= v.value)
		case Le:
			return intervalCmp(hi <= v.value, lo > v.value)
		case Gt:
			return intervalCmp(lo > v.value, hi <= v.value)
		case Ge:
			return intervalCmp(lo >= v.value, hi < v.value)
		case Eq:
			if e == 0 {
				return intervalCmp(z.Lo == v.value && z.Hi == v.value,
					v.value < z.Lo || v.value > z.Hi)
			}
			return intervalCmp(false, lo > v.value || hi < v.value)
		case Ne:
			if e == 0 {
				return intervalCmp(v.value < z.Lo || v.value > z.Hi,
					z.Lo == v.value && z.Hi == v.value)
			}
			return intervalCmp(lo > v.value || hi < v.value, false)
		default:
			return maybe
		}
	case *catIn:
		z, ok := zones(v.column)
		if !ok || z.Kind != table.Categorical || z.MayContain == nil {
			return maybe
		}
		if tol[v.column] != 0 {
			// A nonzero flip budget means up to ⌊e·N⌋ rows may hold a
			// value the zone never recorded; absence proves nothing.
			return maybe
		}
		for val := range v.set {
			if z.MayContain(val) {
				// Fingerprints are one-sided: presence is only "maybe"
				// (hash collisions), never a definite yes.
				return maybe
			}
		}
		return no
	case *logical:
		if len(v.ps) == 0 {
			if v.or {
				return no
			}
			return yes
		}
		acc := zoneEval(v.ps[0], zones, tol)
		for _, q := range v.ps[1:] {
			if v.or {
				acc = triOr(acc, zoneEval(q, zones, tol))
			} else {
				acc = triAnd(acc, zoneEval(q, zones, tol))
			}
		}
		return acc
	case *negation:
		// Not flips definite verdicts, but only all-rows-definite ones:
		// zoneEval(p)==no means every row is a definite no for p, hence a
		// definite yes for Not(p), and symmetrically.
		return triNot(zoneEval(v.p, zones, tol))
	default:
		return maybe
	}
}
