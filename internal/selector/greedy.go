package selector

import (
	"context"
	"fmt"
)

// Greedy is the paper's low-complexity CaRT-selection algorithm (§3.2):
// visit the attributes in the topological order of the Bayesian network;
// roots are materialized; every other attribute gets a CaRT built from the
// attributes materialized so far, and is predicted when the relative
// storage benefit MaterCost/PredCost is at least theta. At most n-1 CaRTs
// are built.
func Greedy(in Input, theta float64) (*Result, error) {
	return GreedyContext(context.Background(), in, theta)
}

// GreedyContext is Greedy with cancellation: ctx is checked before each
// attribute's CaRT construction, so a cancel abandons the traversal within
// one tree build and returns the wrapped context error.
func GreedyContext(ctx context.Context, in Input, theta float64) (*Result, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if theta <= 0 {
		theta = 2 // the paper's experimental setting (§4.1)
	}
	predicted := map[int]*estimate{}
	var materialized []int
	built := 0
	for _, xi := range in.Net.TopoOrder() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("selector: greedy selection cancelled: %w", err)
		}
		if len(in.Net.Parents(xi)) == 0 {
			materialized = append(materialized, xi)
			continue
		}
		est, ok := buildEstimate(ctx, in, xi, materialized)
		built++
		if !ok || est.cost <= 0 {
			materialized = append(materialized, xi)
			continue
		}
		if in.materCost(xi)/est.cost >= theta {
			predicted[xi] = &est
		} else {
			materialized = append(materialized, xi)
		}
	}
	res := finishResult(in, predicted, built)
	return res, res.Validate()
}
