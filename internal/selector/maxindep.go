package selector

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/wmis"
)

// MaxIndependentSet is the paper's Figure 4 algorithm. Starting from
// all-materialized, each iteration:
//
//  1. builds, for every materialized Xᵢ, a CaRT from its "materialized
//     neighborhood" (neighbors that are materialized, plus the predictor
//     sets of neighbors that are already predicted);
//  2. estimates cost_changeᵢ — the effect on already-selected CaRTs of
//     replacing Xᵢ (as their predictor) with Xᵢ's own predictors
//     (NEW_PRED rewiring);
//  3. forms the node-weighted undirected graph G_temp on the materialized
//     attributes, with weight(Xᵢ) = MaterCost − PredCost + cost_changeᵢ,
//     edges from every predictor relation, and a clique over each selected
//     predictor set (so at most one member of any PRED set is chosen);
//  4. moves a (near-optimal) maximum-weight independent set to the
//     predicted side, rewiring affected predictors.
//
// Iterations continue until no positive-benefit set exists.
func MaxIndependentSet(in Input, nb Neighborhood) (*Result, error) {
	return MaxIndependentSetContext(context.Background(), in, nb)
}

// MaxIndependentSetContext is MaxIndependentSet with cancellation: ctx is
// checked at the top of every WMIS iteration (each buildCandidate round)
// and inside every CaRT construction, so a cancel abandons the search
// within one tree build and returns the wrapped context error.
func MaxIndependentSetContext(ctx context.Context, in Input, nb Neighborhood) (*Result, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	n := in.Sample.NumCols()
	mat := make(map[int]bool, n) // 𝒳_mat
	for i := 0; i < n; i++ {
		mat[i] = true
	}
	predicted := map[int]*estimate{} // 𝒳_pred with current models
	built := 0

	neighborhood := func(i int) []int {
		if nb == MarkovBlanket {
			return in.Net.MarkovBlanket(i)
		}
		return in.Net.Parents(i)
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("selector: WMIS iteration cancelled: %w", err)
		}
		// Step 1-2: candidate CaRT + rewiring estimates per materialized
		// attribute. Each Xᵢ's work reads only immutable iteration state,
		// so the (expensive) CaRT constructions run in parallel; results
		// land in per-Xᵢ slots, keeping the algorithm deterministic.
		matList := sortedKeys(mat)
		slots := make([]candidateSlot, len(matList))
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for si, xi := range matList {
			wg.Add(1)
			sem <- struct{}{}
			go func(si, xi int) {
				defer wg.Done()
				defer func() { <-sem }()
				slots[si] = buildCandidate(ctx, in, xi, neighborhood(xi), mat, predicted)
			}(si, xi)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("selector: WMIS iteration cancelled: %w", err)
		}

		cand := map[int]*estimate{}            // Xᵢ -> candidate model
		newPred := map[int]map[int]*estimate{} // Xᵢ -> (Xⱼ -> rewired model)
		costChange := map[int]float64{}
		for si, xi := range matList {
			s := &slots[si]
			built += s.built
			cand[xi] = s.cand
			if len(s.newPred) > 0 {
				newPred[xi] = s.newPred
			}
			costChange[xi] = s.costChange
		}

		// Step 3: build G_temp.
		index := map[int]int{}
		for gi, xi := range matList {
			index[xi] = gi
		}
		g := wmis.NewGraph(len(matList))
		for gi, xi := range matList {
			// weight = MaterCost − PredCost + cost_change (Step 18), where
			// cost_change sums (old − new) prediction costs of rewired
			// downstream CaRTs.
			g.SetWeight(gi, in.materCost(xi)-cand[xi].cost+costChange[xi])
		}
		addEdges := func(set []int, extra int) {
			nodes := set
			if extra >= 0 {
				nodes = append(append([]int(nil), set...), extra)
			}
			for a := 0; a < len(nodes); a++ {
				for b := a + 1; b < len(nodes); b++ {
					ia, oka := index[nodes[a]]
					ib, okb := index[nodes[b]]
					if oka && okb && ia != ib {
						_ = g.AddEdge(ia, ib)
					}
				}
			}
		}
		// Clique over each selected CaRT's predictor set.
		for _, xj := range sortedKeys2(predicted) {
			addEdges(predicted[xj].used, -1)
		}
		// Edges between each materialized Xᵢ and its candidate predictors.
		for _, xi := range matList {
			if cand[xi].model != nil {
				addEdges(cand[xi].used, xi)
			}
		}

		// Step 4: solve and apply.
		sel := wmis.Solve(g)
		if len(sel) == 0 || g.SetWeightSum(sel) <= 0 {
			break
		}
		selAttrs := make([]int, len(sel))
		for i, gi := range sel {
			selAttrs[i] = matList[gi]
		}
		// Rewire predicted attributes whose PRED intersects the selection.
		for _, xj := range sortedKeys2(predicted) {
			for _, xi := range selAttrs {
				if contains(predicted[xj].used, xi) {
					if np := newPred[xi][xj]; np != nil {
						predicted[xj] = np
					}
				}
			}
		}
		for _, xi := range selAttrs {
			predicted[xi] = cand[xi]
			delete(mat, xi)
		}
		built += repairPlan(ctx, in, mat, predicted)
	}

	res := finishResult(in, predicted, built)
	return res, res.Validate()
}

// repairPlan restores the invariant that every selected CaRT's predictors
// are materialized. The G_temp cliques guarantee it for the *current*
// predictor sets, but a NEW_PRED rewiring can fail to build (leaving a
// stale model) or introduce members that this same iteration moved to the
// predicted side. Offending models are rebuilt against materialized
// attributes only; if that fails, the attribute reverts to materialized
// (which is always safe: predicted attributes are never predictors).
// Returns the number of CaRTs built.
func repairPlan(ctx context.Context, in Input, mat map[int]bool, predicted map[int]*estimate) int {
	built := 0
	for changed := true; changed; {
		changed = false
		for _, xj := range sortedKeys2(predicted) {
			est := predicted[xj]
			bad := false
			for _, u := range est.used {
				if !mat[u] {
					bad = true
					break
				}
			}
			if !bad {
				continue
			}
			// Substitute each predicted member with its own predictors.
			cands := map[int]bool{}
			for _, u := range est.used {
				if mat[u] {
					cands[u] = true
					continue
				}
				if sub, ok := predicted[u]; ok {
					for _, p := range sub.used {
						if mat[p] {
							cands[p] = true
						}
					}
				}
			}
			candList := make([]int, 0, len(cands))
			for c := range cands {
				candList = append(candList, c)
			}
			sort.Ints(candList)
			newEst, ok := buildEstimate(ctx, in, xj, candList)
			if len(candList) > 0 {
				built++
			}
			if ok {
				predicted[xj] = &newEst
			} else {
				delete(predicted, xj)
				mat[xj] = true
			}
			changed = true
		}
	}
	return built
}

// candidateSlot is the result of one materialized attribute's Step 1-2
// work.
type candidateSlot struct {
	cand       *estimate
	newPred    map[int]*estimate
	costChange float64
	built      int
}

// buildCandidate performs Steps 5-14 of Figure 4 for one materialized
// attribute: build its candidate CaRT from the materialized neighborhood,
// then estimate the rewiring cost for every selected CaRT that currently
// uses it.
func buildCandidate(ctx context.Context, in Input, xi int, neigh []int, mat map[int]bool, predicted map[int]*estimate) candidateSlot {
	var s candidateSlot
	cands := materNeighbors(xi, neigh, mat, predicted)
	est, ok := buildEstimate(ctx, in, xi, cands)
	if len(cands) > 0 {
		s.built++
	}
	if !ok {
		s.cand = &estimate{cost: est.cost} // +Inf cost, weight < 0
		return s
	}
	s.cand = &est

	// Rewiring: for every predicted Xⱼ currently using Xᵢ, rebuild its
	// CaRT with Xᵢ replaced by PRED(Xᵢ).
	for _, xj := range sortedKeys2(predicted) {
		if !contains(predicted[xj].used, xi) {
			continue
		}
		np := union(remove(predicted[xj].used, xi), est.used)
		newEst, ok2 := buildEstimate(ctx, in, xj, np)
		s.built++
		if !ok2 {
			continue
		}
		if s.newPred == nil {
			s.newPred = map[int]*estimate{}
		}
		s.newPred[xj] = &newEst
		s.costChange += predicted[xj].cost - newEst.cost
	}
	return s
}

// materNeighbors computes the paper's mater_neighbors(Xᵢ): materialized
// neighbors directly, predicted neighbors replaced by their own (all
// materialized) predictor sets.
func materNeighbors(xi int, neigh []int, mat map[int]bool, predicted map[int]*estimate) []int {
	set := map[int]bool{}
	for _, x := range neigh {
		if x == xi {
			continue
		}
		if mat[x] {
			set[x] = true
			continue
		}
		if est, ok := predicted[x]; ok {
			for _, p := range est.used {
				if p != xi {
					set[p] = true
				}
			}
		}
	}
	out := make([]int, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedKeys2(m map[int]*estimate) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func remove(s []int, x int) []int {
	out := make([]int, 0, len(s))
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

func union(a, b []int) []int {
	set := map[int]bool{}
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
