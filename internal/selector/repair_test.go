package selector

import (
	"context"
	"math"
	"testing"

	"repro/internal/bayesnet"
	"repro/internal/cart"
	"repro/internal/table"
)

// repairInput builds a 3-attribute stub where the cost table can be
// switched mid-run to force the NEW_PRED rebuild path to fail, leaving a
// predicted attribute using another predicted attribute until repairPlan
// fixes it.
func repairInput(t *testing.T) Input {
	t.Helper()
	schema := table.Schema{
		{Name: "A", Kind: table.Numeric},
		{Name: "B", Kind: table.Numeric},
		{Name: "C", Kind: table.Numeric},
	}
	b := table.MustBuilder(schema)
	b.MustAppendRow(1.0, 1.0, 1.0)
	tb := b.MustBuild()
	net := bayesnet.NewNetwork(schema.Names())
	if err := net.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	return Input{
		Sample: tb,
		Tol:    table.ZeroTolerances(tb),
		Net:    net,
		Cost:   cart.NewCostModel(tb),
	}
}

func leaf(target int) *cart.Model {
	return &cart.Model{Target: target, TargetKind: table.Numeric,
		Root: &cart.Node{Leaf: true}}
}

func TestRepairPlanRebuilds(t *testing.T) {
	in := repairInput(t)
	// C is predicted from B, but B just moved to the predicted side
	// (predicted from A). repairPlan must rebuild C's model from A.
	in.buildFn = func(_ Input, target int, cands []int) (estimate, bool) {
		if len(cands) == 0 {
			return estimate{cost: math.Inf(1)}, false
		}
		return estimate{model: leaf(target), used: []int{cands[0]}, cost: 10}, true
	}
	mat := map[int]bool{0: true}
	predicted := map[int]*estimate{
		1: {model: leaf(1), used: []int{0}, cost: 10},
		2: {model: leaf(2), used: []int{1}, cost: 10}, // violates: 1 is predicted
	}
	built := repairPlan(context.Background(), in, mat, predicted)
	if built == 0 {
		t.Error("repairPlan built nothing despite a violation")
	}
	for xj, est := range predicted {
		for _, u := range est.used {
			if !mat[u] {
				t.Errorf("after repair, predicted %d still uses non-materialized %d", xj, u)
			}
		}
	}
	if _, ok := predicted[2]; !ok {
		t.Error("repair dropped attribute 2 although a rebuild was possible")
	}
}

func TestRepairPlanRevertsWhenRebuildImpossible(t *testing.T) {
	in := repairInput(t)
	// Rebuilds always fail: the offender must revert to materialized.
	in.buildFn = func(_ Input, _ int, _ []int) (estimate, bool) {
		return estimate{cost: math.Inf(1)}, false
	}
	mat := map[int]bool{0: true}
	predicted := map[int]*estimate{
		2: {model: leaf(2), used: []int{1}, cost: 10}, // 1 is not materialized
	}
	repairPlan(context.Background(), in, mat, predicted)
	if _, ok := predicted[2]; ok {
		t.Error("unsalvageable predicted attribute was not reverted")
	}
	if !mat[2] {
		t.Error("reverted attribute did not return to the materialized set")
	}
}

func TestMaterNeighbors(t *testing.T) {
	mat := map[int]bool{0: true, 3: true}
	predicted := map[int]*estimate{
		1: {used: []int{0, 3}},
	}
	// Neighborhood of X2: materialized 0, predicted 1 (replaced by its
	// predictors 0 and 3), and X2 itself must be excluded.
	got := materNeighbors(2, []int{0, 1, 2}, mat, predicted)
	want := []int{0, 3}
	if len(got) != len(want) || got[0] != 0 || got[1] != 3 {
		t.Errorf("materNeighbors = %v, want %v", got, want)
	}
	// A predicted neighbor whose predictors include xi itself must not
	// leak xi back in.
	predicted[1] = &estimate{used: []int{0, 2}}
	got = materNeighbors(2, []int{1}, mat, predicted)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("materNeighbors = %v, want [0]", got)
	}
}

func TestSetHelpers(t *testing.T) {
	if !contains([]int{1, 2, 3}, 2) || contains([]int{1, 3}, 2) {
		t.Error("contains wrong")
	}
	got := remove([]int{1, 2, 3, 2}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("remove = %v", got)
	}
	u := union([]int{3, 1}, []int{2, 1})
	if len(u) != 3 || u[0] != 1 || u[1] != 2 || u[2] != 3 {
		t.Errorf("union = %v", u)
	}
}
