// Package selector implements SPARTAN's CaRTSelector component (paper
// §3.2): choosing which attributes to predict via CaRTs and which to
// materialize, so that total storage (materialization + prediction cost)
// is minimized within the error bounds.
//
// Two strategies are provided, exactly as in the paper:
//
//   - Greedy: a single roots-to-leaves traversal of the Bayesian network;
//     an attribute is predicted when its materialization/prediction cost
//     ratio is at least θ.
//   - MaxIndependentSet: iterated WMIS instances over the "predicted-by"
//     benefit graph (Figure 4), including the transitive predictor
//     re-wiring (NEW_PRED) across iterations.
package selector

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/bayesnet"
	"repro/internal/cart"
	"repro/internal/table"
)

// Neighborhood selects the "predictive neighborhood" of a node in the
// Bayesian network used by MaxIndependentSet (paper §3.2).
type Neighborhood int

const (
	// Parents uses π(Xᵢ).
	Parents Neighborhood = iota
	// MarkovBlanket uses β(Xᵢ) (parents + children + co-parents).
	MarkovBlanket
)

// String returns "parents" or "markov".
func (n Neighborhood) String() string {
	if n == MarkovBlanket {
		return "markov"
	}
	return "parents"
}

// Input carries everything the selection algorithms need.
type Input struct {
	// Sample is the (small) table sample CaRTs are trained on.
	Sample *table.Table
	// Tol holds resolved per-attribute tolerances.
	Tol table.Tolerances
	// Net is the Bayesian network from the DependencyFinder.
	Net *bayesnet.Network
	// Cost is the storage cost model derived from the full table.
	Cost *cart.CostModel
	// CartCfg configures tree construction (FullRows should be set to the
	// full table's row count).
	CartCfg cart.Config
	// Holdout, if non-nil, is a sample disjoint from Sample used to
	// estimate each candidate CaRT's true outlier rate. Training-set
	// estimates are optimistic (the tree was fit to them); holdout
	// validation keeps the selector from predicting attributes whose
	// models would drown in outliers on the full table.
	Holdout *table.Table

	// buildFn and materFn let tests substitute CaRT construction and
	// materialization costs with fixed tables (used to replay the paper's
	// worked Examples 3.1/3.2).
	buildFn func(Input, int, []int) (estimate, bool)
	materFn func(int) float64
}

// materCost returns the materialization cost of attribute i.
func (in Input) materCost(i int) float64 {
	if in.materFn != nil {
		return in.materFn(i)
	}
	return in.Cost.MaterCost(i)
}

func (in Input) validate() error {
	if in.Sample == nil || in.Net == nil || in.Cost == nil {
		return fmt.Errorf("selector: Sample, Net and Cost are required")
	}
	n := in.Sample.NumCols()
	if in.Net.NumNodes() != n {
		return fmt.Errorf("selector: network has %d nodes, table has %d attributes", in.Net.NumNodes(), n)
	}
	if len(in.Tol) != n {
		return fmt.Errorf("selector: %d tolerances for %d attributes", len(in.Tol), n)
	}
	for i, e := range in.Tol {
		if e.Quantile {
			return fmt.Errorf("selector: tolerance %d is unresolved (quantile form)", i)
		}
	}
	return nil
}

// Result is a complete prediction plan.
type Result struct {
	// Predicted lists predicted attribute indices (sorted); Models[i] is
	// the CaRT for attribute i (outliers estimated on the sample; callers
	// recompute them against the full table).
	Predicted []int
	Models    map[int]*cart.Model
	// Materialized lists the remaining attributes (sorted).
	Materialized []int
	// CartsBuilt counts CaRT constructions performed during the search
	// (the paper reports these in §4.2).
	CartsBuilt int
	// EstimatedCost is the estimated total storage in bits
	// (materialization of Materialized + prediction of Predicted).
	EstimatedCost float64
}

// Validate checks the structural invariants the paper requires: no
// predicted attribute is used as a predictor, and every model's predictors
// are materialized.
func (r *Result) Validate() error {
	pred := map[int]bool{}
	for _, p := range r.Predicted {
		pred[p] = true
	}
	for _, p := range r.Predicted {
		m := r.Models[p]
		if m == nil {
			return fmt.Errorf("selector: predicted attribute %d has no model", p)
		}
		for _, u := range m.UsedPredictors() {
			if pred[u] {
				return fmt.Errorf("selector: predicted attribute %d uses predicted attribute %d", p, u)
			}
		}
	}
	return nil
}

// estimate holds one built CaRT plus its estimated prediction cost.
type estimate struct {
	model *cart.Model
	used  []int
	cost  float64
}

// buildEstimate builds a CaRT for target from cands and packages the
// result; an empty candidate set yields cost +Inf (the paper's PredCost=∞
// convention for root attributes). A build abandoned by ctx cancellation
// also reports ok=false; callers check ctx at their loop boundaries and
// surface the context error from there.
func buildEstimate(ctx context.Context, in Input, target int, cands []int) (estimate, bool) {
	if in.buildFn != nil {
		return in.buildFn(in, target, cands)
	}
	if len(cands) == 0 {
		return estimate{cost: math.Inf(1)}, false
	}
	m, cost, err := cart.BuildContext(ctx, in.Sample, target, cands, in.Tol[target].Value, in.Cost, in.CartCfg)
	if err != nil {
		return estimate{cost: math.Inf(1)}, false
	}
	if in.Holdout != nil && in.Holdout.NumRows() > 0 {
		violations := m.CountViolations(in.Holdout, in.Tol[target].Value)
		scale := float64(in.Cost.NumRows()) / float64(in.Holdout.NumRows())
		cost = in.Cost.ModelTreeBits(m) +
			scale*float64(violations)*in.Cost.OutlierBits(target)
	}
	return estimate{model: m, used: m.UsedPredictors(), cost: cost}, true
}

// finishResult assembles a Result from the final partition.
func finishResult(in Input, predicted map[int]*estimate, built int) *Result {
	n := in.Sample.NumCols()
	res := &Result{Models: map[int]*cart.Model{}, CartsBuilt: built}
	total := 0.0
	for i := 0; i < n; i++ {
		if est, ok := predicted[i]; ok {
			res.Predicted = append(res.Predicted, i)
			res.Models[i] = est.model
			total += est.cost
		} else {
			res.Materialized = append(res.Materialized, i)
			total += in.materCost(i)
		}
	}
	sort.Ints(res.Predicted)
	sort.Ints(res.Materialized)
	res.EstimatedCost = total
	return res
}
