package selector

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bayesnet"
	"repro/internal/cart"
	"repro/internal/floats"
	"repro/internal/table"
)

// --- Paper Examples 3.1 / 3.2: fixed-cost replay ---------------------------

// paperExampleInput builds the 4-attribute chain X1→X2→X3→X4 of Figure 3(a)
// with MaterCost 125 everywhere and the fixed prediction-cost table of
// Example 3.1, injected via the build/mater hooks.
func paperExampleInput(t *testing.T) Input {
	t.Helper()
	schema := table.Schema{
		{Name: "X1", Kind: table.Numeric},
		{Name: "X2", Kind: table.Numeric},
		{Name: "X3", Kind: table.Numeric},
		{Name: "X4", Kind: table.Numeric},
	}
	b := table.MustBuilder(schema)
	b.MustAppendRow(1.0, 1.0, 1.0, 1.0) // content is irrelevant to the stub
	tb := b.MustBuild()

	net := bayesnet.NewNetwork(schema.Names())
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := net.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}

	type entry struct {
		preds []int
		cost  float64
	}
	costs := map[int][]entry{
		1: {{[]int{0}, 75}},
		2: {{[]int{1}, 15}, {[]int{0}, 80}},
		3: {{[]int{1}, 80}, {[]int{0}, 125}, {[]int{2}, 75}},
	}
	leafModel := func(target int) *cart.Model {
		return &cart.Model{Target: target, TargetKind: table.Numeric,
			Root: &cart.Node{Leaf: true}}
	}
	buildFn := func(_ Input, target int, cands []int) (estimate, bool) {
		have := map[int]bool{}
		for _, c := range cands {
			have[c] = true
		}
		best := estimate{cost: math.Inf(1)}
		found := false
		for _, e := range costs[target] {
			ok := true
			for _, p := range e.preds {
				if !have[p] {
					ok = false
				}
			}
			if ok && e.cost < best.cost {
				best = estimate{model: leafModel(target), used: e.preds, cost: e.cost}
				found = true
			}
		}
		return best, found
	}
	return Input{
		Sample:  tb,
		Tol:     table.ZeroTolerances(tb),
		Net:     net,
		Cost:    cart.NewCostModel(tb),
		buildFn: buildFn,
		materFn: func(int) float64 { return 125 },
	}
}

// TestPaperExample31Greedy replays Example 3.1: θ=1.5 predicts X2 and X3,
// materializes X1 and X4, total cost 405.
func TestPaperExample31Greedy(t *testing.T) {
	in := paperExampleInput(t)
	res, err := Greedy(in, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	wantPredicted(t, res, []int{1, 2})
	if !floats.SameBits(res.EstimatedCost, 405) {
		t.Errorf("Greedy cost = %g, want 405 (paper Example 3.1)", res.EstimatedCost)
	}
}

// TestPaperExample32MaxIndependentSet replays Example 3.2: the algorithm
// converges to predicting X3 and X4 (both from X2) for the optimal total
// cost of 345.
func TestPaperExample32MaxIndependentSet(t *testing.T) {
	in := paperExampleInput(t)
	res, err := MaxIndependentSet(in, Parents)
	if err != nil {
		t.Fatal(err)
	}
	wantPredicted(t, res, []int{2, 3})
	if !floats.SameBits(res.EstimatedCost, 345) {
		t.Errorf("MaxIndependentSet cost = %g, want 345 (paper Example 3.2)", res.EstimatedCost)
	}
}

// TestPaperMISBeatsGreedy is the paper's point: on Example 3.1's instance,
// WMIS selection strictly beats Greedy (345 < 405).
func TestPaperMISBeatsGreedy(t *testing.T) {
	in := paperExampleInput(t)
	rg, err := Greedy(in, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := MaxIndependentSet(in, Parents)
	if err != nil {
		t.Fatal(err)
	}
	if rm.EstimatedCost >= rg.EstimatedCost {
		t.Errorf("MIS cost %g not better than Greedy %g", rm.EstimatedCost, rg.EstimatedCost)
	}
}

func wantPredicted(t *testing.T, res *Result, want []int) {
	t.Helper()
	if len(res.Predicted) != len(want) {
		t.Fatalf("Predicted = %v, want %v", res.Predicted, want)
	}
	for i := range want {
		if res.Predicted[i] != want[i] {
			t.Fatalf("Predicted = %v, want %v", res.Predicted, want)
		}
	}
}

// --- End-to-end selection on real tables ------------------------------------

// dependentTable: y = 2x (+tiny noise), c determined by x, z independent.
func dependentTable(rng *rand.Rand, n int) *table.Table {
	schema := table.Schema{
		{Name: "x", Kind: table.Numeric},
		{Name: "y", Kind: table.Numeric},
		{Name: "c", Kind: table.Categorical},
		{Name: "z", Kind: table.Numeric},
	}
	b := table.MustBuilder(schema)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		cat := "lo"
		if x > 50 {
			cat = "hi"
		}
		b.MustAppendRow(x, 2*x+rng.Float64(), cat, rng.Float64()*1000)
	}
	return b.MustBuild()
}

func realInput(t *testing.T, tb *table.Table) Input {
	t.Helper()
	net, err := bayesnet.Build(tb, bayesnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tol, err := table.UniformTolerances(tb, 0.01, 0).Resolve(tb)
	if err != nil {
		t.Fatal(err)
	}
	return Input{
		Sample:  tb,
		Tol:     tol,
		Net:     net,
		Cost:    cart.NewCostModel(tb),
		CartCfg: cart.Config{FullRows: tb.NumRows()},
	}
}

func TestMaxIndependentSetOnRealData(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tb := dependentTable(rng, 800)
	in := realInput(t, tb)
	res, err := MaxIndependentSet(in, Parents)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) == 0 {
		t.Error("no attributes predicted despite strong x→y and x→c dependencies")
	}
	// z (independent noise) must never be predicted.
	for _, p := range res.Predicted {
		if p == 3 {
			t.Error("independent attribute z selected for prediction")
		}
	}
	// Total cost must beat materializing everything.
	allMat := 0.0
	for i := 0; i < tb.NumCols(); i++ {
		allMat += in.Cost.MaterCost(i)
	}
	if res.EstimatedCost >= allMat {
		t.Errorf("estimated cost %.0f does not beat all-materialized %.0f",
			res.EstimatedCost, allMat)
	}
}

func TestGreedyOnRealData(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tb := dependentTable(rng, 800)
	in := realInput(t, tb)
	res, err := Greedy(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.CartsBuilt >= tb.NumCols() {
		t.Errorf("Greedy built %d CaRTs, must be < n = %d", res.CartsBuilt, tb.NumCols())
	}
	// Partition covers all attributes exactly once.
	if len(res.Predicted)+len(res.Materialized) != tb.NumCols() {
		t.Errorf("partition sizes %d+%d != %d",
			len(res.Predicted), len(res.Materialized), tb.NumCols())
	}
}

func TestMarkovBlanketNeighborhood(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tb := dependentTable(rng, 600)
	in := realInput(t, tb)
	res, err := MaxIndependentSet(in, MarkovBlanket)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	tb := dependentTable(rng, 50)
	in := realInput(t, tb)

	bad := in
	bad.Net = bayesnet.NewNetwork([]string{"only"})
	if _, err := Greedy(bad, 2); err == nil {
		t.Error("Greedy accepted mismatched network")
	}
	bad2 := in
	bad2.Tol = table.Tolerances{{Value: 1}}
	if _, err := MaxIndependentSet(bad2, Parents); err == nil {
		t.Error("MaxIndependentSet accepted wrong-length tolerances")
	}
	bad3 := in
	bad3.Tol = append(table.Tolerances(nil), in.Tol...)
	bad3.Tol[0] = table.Tolerance{Value: 0.1, Quantile: true}
	if _, err := Greedy(bad3, 2); err == nil {
		t.Error("Greedy accepted unresolved quantile tolerance")
	}
	bad4 := in
	bad4.Sample = nil
	if _, err := Greedy(bad4, 2); err == nil {
		t.Error("Greedy accepted nil sample")
	}
}

func TestNeighborhoodString(t *testing.T) {
	if Parents.String() != "parents" || MarkovBlanket.String() != "markov" {
		t.Error("Neighborhood String() wrong")
	}
}

func TestResultValidateCatchesCrossPrediction(t *testing.T) {
	// A model for attribute 1 that splits on attribute 2 while 2 is also
	// predicted must be rejected.
	m1 := &cart.Model{Target: 1, TargetKind: table.Numeric, Root: &cart.Node{
		SplitAttr: 2,
		Left:      &cart.Node{Leaf: true},
		Right:     &cart.Node{Leaf: true},
	}}
	m2 := &cart.Model{Target: 2, TargetKind: table.Numeric,
		Root: &cart.Node{Leaf: true}}
	r := &Result{Predicted: []int{1, 2}, Models: map[int]*cart.Model{1: m1, 2: m2}}
	if err := r.Validate(); err == nil {
		t.Error("Validate accepted predicted attribute used as predictor")
	}
	r2 := &Result{Predicted: []int{1}, Models: map[int]*cart.Model{}}
	if err := r2.Validate(); err == nil {
		t.Error("Validate accepted missing model")
	}
}
