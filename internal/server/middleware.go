package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// requestIDKey is the context key under which the request ID travels.
type requestIDKey struct{}

// RequestIDHeader is the header the service reads an incoming request ID
// from and always sets on responses.
const RequestIDHeader = "X-Request-Id"

// RequestID returns the request ID middleware attached to the context, or
// "" outside an instrumented request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns 16 hex characters of crypto/rand entropy.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000" // out of entropy; keep serving
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status code and body size a handler wrote,
// so the access log and metrics see the real response.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// instrument wraps h with the full middleware stack, outermost first:
// request ID → in-flight/latency/status metrics + access log → panic
// recovery. route is the metric label and log field for the endpoint
// (the mux pattern's path).
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Request ID: propagate the caller's or mint one.
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		s.m.inFlight.Add(1)
		// Paired as its own defer (not buried in the closure below) so no
		// future edit to the recovery path can leak an in-flight count.
		defer s.m.inFlight.Add(-1)
		defer func() {
			// Panic recovery: count it, log the stack, and answer 500 if
			// the handler had not committed a response yet.
			if p := recover(); p != nil {
				s.m.panics.Inc()
				s.log.Error("panic serving request",
					"route", route,
					"request_id", id,
					"panic", fmt.Sprint(p),
					"stack", string(debug.Stack()),
				)
				if !rec.wrote {
					rec.Header().Set("Content-Type", "application/json")
					rec.WriteHeader(http.StatusInternalServerError)
					_ = json.NewEncoder(rec).Encode(map[string]string{
						"error":      "internal server error",
						"request_id": id,
					})
				}
			}

			elapsed := time.Since(start)
			s.m.requests.Inc(route, strconv.Itoa(rec.status))
			s.m.latency.Observe(elapsed.Seconds(), route)
			s.m.responseBytes.Add(float64(rec.bytes), route)
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("duration", elapsed),
				slog.String("request_id", id),
				slog.String("remote", r.RemoteAddr),
			)
		}()
		h(rec, r)
	})
}
