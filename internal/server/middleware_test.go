package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/table"
)

// newTestServer builds a bare Server (no mux) for middleware-level tests.
func newTestServer(log *slog.Logger) *Server {
	s := &Server{log: log, reg: obs.NewRegistry()}
	s.m = newMetrics(s.reg)
	return s
}

func TestRequestIDPropagation(t *testing.T) {
	s := newTestServer(discardLogger())
	var seen string
	h := s.instrument("/echo", func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	})

	// Caller-supplied ID is propagated to context and response header.
	req := httptest.NewRequest("GET", "/echo", nil)
	req.Header.Set(RequestIDHeader, "client-chosen-id")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-chosen-id" {
		t.Errorf("context request ID = %q, want client-chosen-id", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "client-chosen-id" {
		t.Errorf("response header = %q, want client-chosen-id", got)
	}

	// Absent ID: one is minted (16 hex chars) and returned.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/echo", nil))
	got := rec.Header().Get(RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("minted request ID = %q, want 16 hex chars", got)
	}
	if seen != got {
		t.Errorf("context ID %q != header ID %q", seen, got)
	}
}

func TestPanicRecovery(t *testing.T) {
	var logBuf bytes.Buffer
	s := newTestServer(slog.New(slog.NewJSONHandler(&logBuf, nil)))
	h := s.instrument("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var body map[string]string
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if body["error"] != "internal server error" || body["request_id"] == "" {
		t.Errorf("body = %v", body)
	}
	if !strings.Contains(logBuf.String(), "kaboom") {
		t.Error("panic value missing from log")
	}

	var metricsOut strings.Builder
	s.reg.WritePrometheus(&metricsOut)
	if !strings.Contains(metricsOut.String(), "spartan_http_panics_total 1") {
		t.Errorf("panic not counted:\n%s", metricsOut.String())
	}
	if !strings.Contains(metricsOut.String(), `spartan_http_requests_total{route="/boom",code="500"} 1`) {
		t.Errorf("500 not counted:\n%s", metricsOut.String())
	}
}

// TestPanicAfterWriteKeepsResponse checks the recovery path does not
// stomp a partially written response.
func TestPanicAfterWriteKeepsResponse(t *testing.T) {
	s := newTestServer(discardLogger())
	h := s.instrument("/late", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		_, _ = io.WriteString(w, "partial") // recorder writes cannot fail
		panic("too late")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/late", nil))
	if rec.Code != http.StatusAccepted || rec.Body.String() != "partial" {
		t.Errorf("recovery rewrote committed response: %d %q", rec.Code, rec.Body.String())
	}
}

func TestAccessLogFields(t *testing.T) {
	var logBuf bytes.Buffer
	s := newTestServer(slog.New(slog.NewJSONHandler(&logBuf, nil)))
	h := s.instrument("/ok", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "hello") // recorder writes cannot fail
	})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok?x=1", nil))

	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, logBuf.String())
	}
	rid, _ := line["request_id"].(string)
	if line["route"] != "/ok" || line["method"] != "GET" ||
		line["status"] != float64(200) || line["bytes"] != float64(5) || rid == "" {
		t.Errorf("access log fields = %v", line)
	}
}

// TestMetricsEndpoint drives one full /compress through the real handler
// stack and asserts /metrics then serves valid exposition text with the
// acceptance-criteria metric families present.
func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(WithLogger(discardLogger())))
	defer srv.Close()

	tb := datagen.CDR(1200, 7)
	var buf bytes.Buffer
	if err := table.WriteBinary(&buf, tb); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/compress?tolerance=0.01", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body) // draining only; the asserts below are on the status
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	for _, want := range []string{
		`spartan_http_requests_total{route="/compress",code="200"} 1`,
		`spartan_http_request_duration_seconds_bucket{route="/compress",le="+Inf"} 1`,
		"spartan_http_in_flight_requests",
		"spartan_compress_ratio_count 1",
		"spartan_compress_predicted_attributes_count 1",
		`spartan_compress_tolerance_bucket{le="0.01"} 1`,
		`spartan_compress_phase_seconds_count{phase="dependency_finder"} 1`,
		`spartan_compress_phase_seconds_count{phase="encode"} 1`,
		"spartan_compress_raw_bytes_total",
		"spartan_compress_compressed_bytes_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Minimal exposition-format validity: every non-comment line is
	// "name{labels} value" and every HELP has a TYPE.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestTimingHeaders(t *testing.T) {
	srv := httptest.NewServer(New(WithLogger(discardLogger())))
	defer srv.Close()

	tb := datagen.CDR(800, 5)
	var buf bytes.Buffer
	if err := table.WriteBinary(&buf, tb); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/compress?tolerance=0.01", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body) // draining only; the asserts below are on the status
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d", resp.StatusCode)
	}

	var total time.Duration
	for _, th := range timingHeaders {
		name := "X-Spartan-Timing-" + th.suffix
		v := resp.Header.Get(name)
		if v == "" {
			t.Errorf("missing header %s", name)
			continue
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Errorf("%s = %q not a duration: %v", name, v, err)
			continue
		}
		if th.suffix == "Total" {
			if d != total {
				t.Errorf("Total %v != sum of phases %v", d, total)
			}
		} else {
			total += d
		}
	}
}
