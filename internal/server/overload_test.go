package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
)

// overloadServer builds a server with direct access to its internals so
// tests can saturate the semaphore deterministically instead of racing
// real in-flight requests.
func overloadServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := newServer(append([]Option{WithLogger(discardLogger())}, opts...)...)
	srv := httptest.NewServer(s.routes())
	t.Cleanup(srv.Close)
	return s, srv
}

// metricValue scrapes one sample line from the registry's exposition.
func metricValue(t *testing.T, reg *obs.Registry, prefix string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

func TestConcurrencyLimit429(t *testing.T) {
	reg := obs.NewRegistry()
	s, srv := overloadServer(t, WithMaxConcurrent(1), WithRegistry(reg))

	// Saturate the only slot, as a held in-flight pipeline would.
	s.pipelineSem <- struct{}{}
	defer func() { <-s.pipelineSem }()

	tb := datagen.CDR(100, 1)
	resp, err := http.Post(srv.URL+"/compress?tolerance=0.01", "application/octet-stream", tableBody(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if line := metricValue(t, reg, `spartan_http_rejected_total{reason="concurrency"}`); !strings.HasSuffix(line, " 1") {
		t.Errorf("rejection not counted: %q", line)
	}

	// /query is limited by the same semaphore; /decompress is not.
	resp2, err := http.Post(srv.URL+"/query?agg=count", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Errorf("query status = %d, want 429", resp2.StatusCode)
	}
	resp3, err := http.Post(srv.URL+"/decompress", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode == http.StatusTooManyRequests {
		t.Error("decompress rejected by the pipeline limiter; it should not be limited")
	}
}

func TestRequestTimeout503(t *testing.T) {
	reg := obs.NewRegistry()
	_, srv := overloadServer(t, WithRequestTimeout(time.Nanosecond), WithRegistry(reg))

	tb := datagen.CDR(2000, 1)
	resp, err := http.Post(srv.URL+"/compress?tolerance=0.01", "application/octet-stream", tableBody(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, body)
	}
	if line := metricValue(t, reg, `spartan_http_rejected_total{reason="timeout"}`); !strings.HasSuffix(line, " 1") {
		t.Errorf("timeout not counted: %q", line)
	}
}

func TestBodyTooLarge413(t *testing.T) {
	reg := obs.NewRegistry()
	_, srv := overloadServer(t, WithMaxBodyBytes(64), WithRegistry(reg))

	// /compress reads a raw table; /decompress and /query read a
	// compressed stream, which must be valid so the decoder consumes
	// past the body limit instead of failing at the magic check.
	tb := datagen.CDR(500, 1)
	var compressed bytes.Buffer
	if _, err := core.Compress(&compressed, tb, core.Options{}); err != nil {
		t.Fatal(err)
	}
	bodies := map[string]func() io.Reader{
		"/compress":        func() io.Reader { return tableBody(t, tb) },
		"/decompress":      func() io.Reader { return bytes.NewReader(compressed.Bytes()) },
		"/query?agg=count": func() io.Reader { return bytes.NewReader(compressed.Bytes()) },
	}
	if tableBody(t, tb).Len() <= 64 || compressed.Len() <= 64 {
		t.Fatal("test bodies must exceed the 64-byte limit")
	}
	for route, body := range bodies {
		resp, err := http.Post(srv.URL+route, "application/octet-stream", body())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s status = %d, want 413", route, resp.StatusCode)
		}
	}
	if line := metricValue(t, reg, `spartan_http_rejected_total{reason="body_too_large"}`); !strings.HasSuffix(line, " 3") {
		t.Errorf("oversize bodies not counted: %q", line)
	}
}

func TestPipelinesInFlightGauge(t *testing.T) {
	reg := obs.NewRegistry()
	_, srv := overloadServer(t, WithRegistry(reg))

	tb := datagen.CDR(300, 1)
	resp, err := http.Post(srv.URL+"/compress?tolerance=0.01", "application/octet-stream", tableBody(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d", resp.StatusCode)
	}
	// The gauge must return to zero once the pipeline finishes.
	if line := metricValue(t, reg, "spartan_pipelines_in_flight"); !strings.HasSuffix(line, " 0") {
		t.Errorf("in-flight gauge did not return to zero: %q", line)
	}
}
