package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"repro/internal/table"
)

// monotonicArchive compresses a 2000-row table whose leading numeric
// column equals the row index, split into four 500-row segments, so a
// range predicate can refute any prefix of segments.
func monotonicArchive(t *testing.T, srv *httptest.Server) []byte {
	t.Helper()
	b, err := table.NewBuilder(table.Schema{
		{Name: "v", Kind: table.Numeric},
		{Name: "g", Kind: table.Categorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"a", "b"}
	for i := 0; i < 2000; i++ {
		b.MustAppendRow(float64(i), groups[i%2])
	}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/compress?segment-rows=500", "application/octet-stream", tableBody(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("compress status = %d: %s", resp.StatusCode, body)
	}
	compressed, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return compressed
}

// scrapeMetrics returns the /metrics exposition body.
func scrapeMetrics(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestQueryPruningHeaders drives /query over the same archive with
// predicates that prune every segment, no segment, and a proper subset,
// checking the X-Spartan-Segments-* headers, the aggregate result, and
// the cumulative spartan_query_segments_total{result} counters after
// each request. Each case gets a fresh server so the counters start
// from zero.
func TestQueryPruningHeaders(t *testing.T) {
	cases := []struct {
		name            string
		where           string
		pruned, decoded int
		count           float64
	}{
		// v ranges over [0,2000) in four 500-row segments.
		{"all pruned", "v > 5000", 4, 0, 0},
		{"all decoded", "v >= 0", 0, 4, 2000},
		{"subset pruned", "v > 999", 2, 2, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := testServer(t)
			compressed := monotonicArchive(t, srv)
			resp, err := http.Post(srv.URL+"/query?agg=count&where="+url.QueryEscape(tc.where),
				"application/x-spartan", bytes.NewReader(compressed))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("query status = %d: %s", resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Spartan-Segments-Pruned"); got != strconv.Itoa(tc.pruned) {
				t.Errorf("X-Spartan-Segments-Pruned = %q, want %d", got, tc.pruned)
			}
			if got := resp.Header.Get("X-Spartan-Segments-Decoded"); got != strconv.Itoa(tc.decoded) {
				t.Errorf("X-Spartan-Segments-Decoded = %q, want %d", got, tc.decoded)
			}
			var out queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			if len(out.Groups) != 1 || out.Groups[0].Value == nil || *out.Groups[0].Value != tc.count {
				t.Errorf("count response %+v, want one group of %g rows", out, tc.count)
			}

			metrics := scrapeMetrics(t, srv)
			for _, want := range []string{
				`spartan_query_segments_total{result="pruned"} ` + strconv.Itoa(tc.pruned),
				`spartan_query_segments_total{result="decoded"} ` + strconv.Itoa(tc.decoded),
			} {
				// A zero-valued label may legitimately be absent from the
				// exposition until first incremented.
				if !strings.Contains(metrics, want) && !strings.HasSuffix(want, " 0") {
					t.Errorf("/metrics missing %q", want)
				}
			}
		})
	}
}

// TestQueryMalformedFooter feeds /query a body that carries the v2
// archive magic but a corrupted footer. The open must fail cleanly with
// a 400, emit no segment headers, and leave the segment counters
// untouched.
func TestQueryMalformedFooter(t *testing.T) {
	srv := testServer(t)
	compressed := monotonicArchive(t, srv)

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			body := mutate(append([]byte(nil), compressed...))
			resp, err := http.Post(srv.URL+"/query?agg=count", "application/x-spartan", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if resp.Header.Get("X-Spartan-Segments-Pruned") != "" ||
				resp.Header.Get("X-Spartan-Segments-Decoded") != "" {
				t.Error("segment headers present on a failed open")
			}
		})
	}

	// Truncated footer: chop the trailing footer-length word.
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-6] })
	// Flipped footer bytes: keep the length, garble the contents.
	corrupt("garbled", func(b []byte) []byte {
		for i := len(b) - 16; i < len(b)-8; i++ {
			b[i] ^= 0xff
		}
		return b
	})

	metrics := scrapeMetrics(t, srv)
	for _, label := range []string{"pruned", "decoded"} {
		needle := `spartan_query_segments_total{result="` + label + `"}`
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, needle) && !strings.HasSuffix(line, " 0") {
				t.Errorf("failed opens moved the segment counter: %s", line)
			}
		}
	}
}
