// Package server exposes SPARTAN compression, decompression and bounded
// approximate querying as an HTTP service — the "compression service in
// front of the warehouse" deployment the paper's introduction sketches
// (clients on low-bandwidth links download semantically compressed
// tables).
//
// Endpoints:
//
//	GET  /healthz                         liveness probe
//	GET  /metrics                         Prometheus text exposition
//	POST /compress?tolerance=F[&...]      table in (CSV or raw binary) → compressed stream
//	POST /decompress                      compressed stream → table (CSV or raw binary by Accept)
//	POST /query?agg=A[&col=C]...          compressed stream → JSON aggregate with bounds
//
// Every route is instrumented: requests carry an X-Request-Id (minted if
// absent), emit a structured log/slog access line, and feed the metrics
// registry (see docs/OBSERVABILITY.md for the full metric and span
// schema). Compression statistics are returned in X-Spartan-* response
// headers, including the §4.2-style per-phase X-Spartan-Timing-* values.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// maxRequestBytes bounds request bodies (tables and compressed streams).
const maxRequestBytes = 1 << 30

// Server carries the service's dependencies: a structured logger and a
// metrics registry. Construct with New.
type Server struct {
	log *slog.Logger
	reg *obs.Registry
	m   metrics
}

// metrics is the full metric set; names are documented in
// docs/OBSERVABILITY.md.
type metrics struct {
	requests      obs.Counter   // spartan_http_requests_total{route,code}
	latency       obs.Histogram // spartan_http_request_duration_seconds{route}
	inFlight      obs.Gauge     // spartan_http_in_flight_requests
	panics        obs.Counter   // spartan_http_panics_total
	responseBytes obs.Counter   // spartan_http_response_bytes_total{route}

	ratio          obs.Histogram // spartan_compress_ratio
	predictedAttrs obs.Histogram // spartan_compress_predicted_attributes
	tolerance      obs.Histogram // spartan_compress_tolerance
	phaseSeconds   obs.Histogram // spartan_compress_phase_seconds{phase}
	rawBytes       obs.Counter   // spartan_compress_raw_bytes_total
	outBytes       obs.Counter   // spartan_compress_compressed_bytes_total
}

// Option customizes the service.
type Option func(*Server)

// WithLogger sets the structured logger for access logs and panics
// (default slog.Default()).
func WithLogger(l *slog.Logger) Option { return func(s *Server) { s.log = l } }

// WithRegistry sets the metrics registry (default a fresh one). Pass a
// shared registry to also expose the metrics on a separate debug
// listener.
func WithRegistry(r *obs.Registry) Option { return func(s *Server) { s.reg = r } }

// New returns the service's HTTP handler.
func New(opts ...Option) http.Handler {
	s := &Server{log: slog.Default(), reg: obs.NewRegistry()}
	for _, o := range opts {
		o(s)
	}
	s.m = newMetrics(s.reg)

	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("/healthz", handleHealth))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.reg.Handler().ServeHTTP))
	mux.Handle("POST /compress", s.instrument("/compress", s.handleCompress))
	mux.Handle("POST /decompress", s.instrument("/decompress", s.handleDecompress))
	mux.Handle("POST /query", s.instrument("/query", s.handleQuery))
	return mux
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		requests: reg.Counter("spartan_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		latency: reg.Histogram("spartan_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", obs.DefBuckets, "route"),
		inFlight: reg.Gauge("spartan_http_in_flight_requests",
			"Requests currently being served."),
		panics: reg.Counter("spartan_http_panics_total",
			"Handler panics recovered by the middleware."),
		responseBytes: reg.Counter("spartan_http_response_bytes_total",
			"Response body bytes written, by route.", "route"),
		ratio: reg.Histogram("spartan_compress_ratio",
			"Compression ratio (compressed/raw, smaller is better) per /compress call.",
			obs.LinearBuckets(0.05, 0.05, 19)),
		predictedAttrs: reg.Histogram("spartan_compress_predicted_attributes",
			"CaRT-predicted attribute count per /compress call.",
			obs.LinearBuckets(1, 1, 32)),
		tolerance: reg.Histogram("spartan_compress_tolerance",
			"Numeric error tolerance requested per /compress call (fraction of range).",
			[]float64{0, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}),
		phaseSeconds: reg.Histogram("spartan_compress_phase_seconds",
			"Pipeline phase duration in seconds, by phase (paper §4.2 accounting).",
			obs.DefBuckets, "phase"),
		rawBytes: reg.Counter("spartan_compress_raw_bytes_total",
			"Raw (uncompressed) bytes accepted by /compress."),
		outBytes: reg.Counter("spartan_compress_compressed_bytes_total",
			"Compressed bytes produced by /compress."),
	}
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// readTableBody parses the request body as CSV (text/csv) or the raw
// binary table format (anything else).
func readTableBody(r *http.Request) (*table.Table, error) {
	body := http.MaxBytesReader(nil, r.Body, maxRequestBytes)
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && mt == "text/csv" {
		return table.ReadCSV(body, nil)
	}
	return table.ReadBinary(body)
}

// tolerancesFromQuery builds the tolerance vector from request
// parameters: tolerance (numeric fraction of range), cat-tolerance
// (categorical probability). The raw numeric fraction is also returned
// for the tolerance-distribution metric.
func tolerancesFromQuery(r *http.Request, t *table.Table) (table.Tolerances, float64, error) {
	parse := func(name string) (float64, error) {
		s := r.URL.Query().Get(name)
		if s == "" {
			return 0, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %w", name, err)
		}
		return v, nil
	}
	numeric, err := parse("tolerance")
	if err != nil {
		return nil, 0, err
	}
	cat, err := parse("cat-tolerance")
	if err != nil {
		return nil, 0, err
	}
	return table.UniformTolerances(t, numeric, cat), numeric, nil
}

// timingHeaders maps the X-Spartan-Timing-* header suffixes to the
// §4.2 phases, in pipeline order.
var timingHeaders = []struct {
	suffix string
	get    func(core.Timings) time.Duration
}{
	{"Dependency-Finder", func(t core.Timings) time.Duration { return t.DependencyFinder }},
	{"Cart-Selection", func(t core.Timings) time.Duration { return t.CaRTSelection }},
	{"Row-Aggregation", func(t core.Timings) time.Duration { return t.RowAggregation }},
	{"Outlier-Scan", func(t core.Timings) time.Duration { return t.OutlierScan }},
	{"Encode", func(t core.Timings) time.Duration { return t.Encode }},
	{"Total", core.Timings.Total},
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	t, err := readTableBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tol, numericTol, err := tolerancesFromQuery(r, t)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// Pipeline trace: the span observer streams per-phase durations into
	// the registry as the phases finish.
	tr := obs.NewTrace("compress")
	tr.OnSpanEnd(func(sp *obs.Span) {
		if sp.Name != core.SpanCompress {
			s.m.phaseSeconds.Observe(sp.Duration().Seconds(), sp.Name)
		}
	})

	opts := core.Options{Tolerances: tol, Trace: tr}
	switch sel := r.URL.Query().Get("selection"); sel {
	case "", "wmis-parents":
	case "wmis-markov":
		opts.Selection = core.SelectWMISMarkov
	case "greedy":
		opts.Selection = core.SelectGreedy
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown selection %q", sel))
		return
	}

	// Compress into memory first so errors can still become proper HTTP
	// statuses and stats can travel as headers. The buffer is sized off
	// the raw table: SPARTAN rarely exceeds a quarter of the input, so
	// RawBytes/4 avoids the append-regrow churn of an unsized buffer
	// without holding raw-sized memory per request.
	var buf bytes.Buffer
	if hint := t.RawSizeBytes() / 4; hint > 0 {
		buf.Grow(min(hint, 64<<20))
	}
	stats, err := core.Compress(&buf, t, opts)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}

	s.m.ratio.Observe(stats.Ratio)
	s.m.predictedAttrs.Observe(float64(len(stats.Predicted)))
	s.m.tolerance.Observe(numericTol)
	s.m.rawBytes.Add(float64(stats.RawBytes))
	s.m.outBytes.Add(float64(stats.CompressedBytes))

	h := w.Header()
	h.Set("Content-Type", "application/x-spartan")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	h.Set("X-Spartan-Raw-Bytes", strconv.Itoa(stats.RawBytes))
	h.Set("X-Spartan-Compressed-Bytes", strconv.Itoa(stats.CompressedBytes))
	h.Set("X-Spartan-Ratio", strconv.FormatFloat(stats.Ratio, 'f', 4, 64))
	h.Set("X-Spartan-Predicted", strings.Join(stats.Predicted, ","))
	for _, th := range timingHeaders {
		h.Set("X-Spartan-Timing-"+th.suffix, th.get(stats.Timings).String())
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // client went away
	}
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(nil, r.Body, maxRequestBytes)
	t, err := core.Decompress(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/csv") {
		w.Header().Set("Content-Type", "text/csv")
		_ = table.WriteCSV(w, t)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = table.WriteBinary(w, t)
}

// queryResponse is the JSON shape of /query results.
type queryResponse struct {
	Agg    string          `json:"agg"`
	Column string          `json:"column,omitempty"`
	Groups []queryGroupDTO `json:"groups"`
}

type queryGroupDTO struct {
	Key       string   `json:"key,omitempty"`
	Value     *float64 `json:"value"` // null when no rows matched
	Lo        *float64 `json:"lo"`
	Hi        *float64 `json:"hi"`
	Rows      int      `json:"rows"`
	Uncertain int      `json:"uncertain"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(nil, r.Body, maxRequestBytes)
	t, err := core.Decompress(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	var agg query.AggKind
	switch strings.ToLower(q.Get("agg")) {
	case "", "count":
		agg = query.Count
	case "sum":
		agg = query.Sum
	case "avg":
		agg = query.Avg
	case "min":
		agg = query.Min
	case "max":
		agg = query.Max
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown agg %q", q.Get("agg")))
		return
	}
	pred, err := query.ParsePredicate(q.Get("where"), t.Schema())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tol, _, err := tolerancesFromQuery(r, t)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := query.Run(t, tol, query.Query{
		Agg:     agg,
		Column:  q.Get("col"),
		Where:   pred,
		GroupBy: q.Get("groupby"),
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := queryResponse{Agg: agg.String(), Column: q.Get("col")}
	for _, g := range res.Groups {
		dto := queryGroupDTO{Key: g.Key, Rows: g.Rows, Uncertain: g.UncertainRows}
		if !math.IsNaN(g.Value) {
			v, lo, hi := g.Value, g.Lo, g.Hi
			dto.Value, dto.Lo, dto.Hi = &v, &lo, &hi
		}
		resp.Groups = append(resp.Groups, dto)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// discardLogger is a logger for tests and callers that want silence.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
