// Package server exposes SPARTAN compression, decompression and bounded
// approximate querying as an HTTP service — the "compression service in
// front of the warehouse" deployment the paper's introduction sketches
// (clients on low-bandwidth links download semantically compressed
// tables).
//
// Endpoints:
//
//	GET  /healthz                         liveness probe
//	POST /compress?tolerance=F[&...]      table in (CSV or raw binary) → compressed stream
//	POST /decompress                      compressed stream → table (CSV or raw binary by Accept)
//	POST /query?agg=A[&col=C]...          compressed stream → JSON aggregate with bounds
//
// Compression statistics are returned in X-Spartan-* response headers.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/table"
)

// maxRequestBytes bounds request bodies (tables and compressed streams).
const maxRequestBytes = 1 << 30

// New returns the service's HTTP handler.
func New() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealth)
	mux.HandleFunc("POST /compress", handleCompress)
	mux.HandleFunc("POST /decompress", handleDecompress)
	mux.HandleFunc("POST /query", handleQuery)
	return mux
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// readTableBody parses the request body as CSV (text/csv) or the raw
// binary table format (anything else).
func readTableBody(r *http.Request) (*table.Table, error) {
	body := http.MaxBytesReader(nil, r.Body, maxRequestBytes)
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && mt == "text/csv" {
		return table.ReadCSV(body, nil)
	}
	return table.ReadBinary(body)
}

// tolerancesFromQuery builds the tolerance vector from request
// parameters: tolerance (numeric fraction of range), cat-tolerance
// (categorical probability).
func tolerancesFromQuery(r *http.Request, t *table.Table) (table.Tolerances, error) {
	parse := func(name string) (float64, error) {
		s := r.URL.Query().Get(name)
		if s == "" {
			return 0, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %w", name, err)
		}
		return v, nil
	}
	numeric, err := parse("tolerance")
	if err != nil {
		return nil, err
	}
	cat, err := parse("cat-tolerance")
	if err != nil {
		return nil, err
	}
	return table.UniformTolerances(t, numeric, cat), nil
}

func handleCompress(w http.ResponseWriter, r *http.Request) {
	t, err := readTableBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tol, err := tolerancesFromQuery(r, t)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opts := core.Options{Tolerances: tol}
	switch sel := r.URL.Query().Get("selection"); sel {
	case "", "wmis-parents":
	case "wmis-markov":
		opts.Selection = core.SelectWMISMarkov
	case "greedy":
		opts.Selection = core.SelectGreedy
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown selection %q", sel))
		return
	}
	// Compress into memory first so errors can still become proper HTTP
	// statuses and stats can travel as headers.
	var buf writeCounter
	stats, err := core.Compress(&buf, t, opts)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/x-spartan")
	h.Set("X-Spartan-Raw-Bytes", strconv.Itoa(stats.RawBytes))
	h.Set("X-Spartan-Compressed-Bytes", strconv.Itoa(stats.CompressedBytes))
	h.Set("X-Spartan-Ratio", strconv.FormatFloat(stats.Ratio, 'f', 4, 64))
	h.Set("X-Spartan-Predicted", strings.Join(stats.Predicted, ","))
	if _, err := w.Write(buf.data); err != nil {
		return // client went away
	}
}

func handleDecompress(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(nil, r.Body, maxRequestBytes)
	t, err := core.Decompress(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/csv") {
		w.Header().Set("Content-Type", "text/csv")
		_ = table.WriteCSV(w, t)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = table.WriteBinary(w, t)
}

// queryResponse is the JSON shape of /query results.
type queryResponse struct {
	Agg    string          `json:"agg"`
	Column string          `json:"column,omitempty"`
	Groups []queryGroupDTO `json:"groups"`
}

type queryGroupDTO struct {
	Key       string   `json:"key,omitempty"`
	Value     *float64 `json:"value"` // null when no rows matched
	Lo        *float64 `json:"lo"`
	Hi        *float64 `json:"hi"`
	Rows      int      `json:"rows"`
	Uncertain int      `json:"uncertain"`
}

func handleQuery(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(nil, r.Body, maxRequestBytes)
	t, err := core.Decompress(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	var agg query.AggKind
	switch strings.ToLower(q.Get("agg")) {
	case "", "count":
		agg = query.Count
	case "sum":
		agg = query.Sum
	case "avg":
		agg = query.Avg
	case "min":
		agg = query.Min
	case "max":
		agg = query.Max
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown agg %q", q.Get("agg")))
		return
	}
	pred, err := query.ParsePredicate(q.Get("where"), t.Schema())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tol, err := tolerancesFromQuery(r, t)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := query.Run(t, tol, query.Query{
		Agg:     agg,
		Column:  q.Get("col"),
		Where:   pred,
		GroupBy: q.Get("groupby"),
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := queryResponse{Agg: agg.String(), Column: q.Get("col")}
	for _, g := range res.Groups {
		dto := queryGroupDTO{Key: g.Key, Rows: g.Rows, Uncertain: g.UncertainRows}
		if !math.IsNaN(g.Value) {
			v, lo, hi := g.Value, g.Lo, g.Hi
			dto.Value, dto.Lo, dto.Hi = &v, &lo, &hi
		}
		resp.Groups = append(resp.Groups, dto)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

type writeCounter struct{ data []byte }

func (c *writeCounter) Write(p []byte) (int, error) {
	c.data = append(c.data, p...)
	return len(p), nil
}
