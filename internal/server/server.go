// Package server exposes SPARTAN compression, decompression and bounded
// approximate querying as an HTTP service — the "compression service in
// front of the warehouse" deployment the paper's introduction sketches
// (clients on low-bandwidth links download semantically compressed
// tables).
//
// Endpoints:
//
//	GET  /healthz                         liveness probe
//	GET  /metrics                         Prometheus text exposition
//	POST /compress?tolerance=F[&...]      table in (CSV or raw binary) → compressed stream
//	POST /decompress                      compressed stream → table (CSV or raw binary by Accept)
//	POST /query?agg=A[&col=C]...          compressed stream → JSON aggregate with bounds
//
// Every route is instrumented: requests carry an X-Request-Id (minted if
// absent), emit a structured log/slog access line, and feed the metrics
// registry (see docs/OBSERVABILITY.md for the full metric and span
// schema). Compression statistics are returned in X-Spartan-* response
// headers, including the §4.2-style per-phase X-Spartan-Timing-* values.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// Archive magics mirrored from internal/archive so /query can sniff the
// body format without consuming the stream.
const (
	archiveMagicV1 = "SPARC1\n"
	archiveMagicV2 = "SPARC2\n"
)

// maxRequestBytes is the default request-body bound (tables and
// compressed streams); see WithMaxBodyBytes.
const maxRequestBytes = 1 << 30

// Server carries the service's dependencies: a structured logger and a
// metrics registry. Construct with New.
type Server struct {
	log *slog.Logger
	reg *obs.Registry
	m   metrics
	// spanObs bridges finished pipeline spans into the registry's generic
	// spartan_phase_* families (obs.NewSpanObserver).
	spanObs func(*obs.Span)

	maxBodyBytes   int64
	requestTimeout time.Duration
	// segmentRows, when positive, makes /compress emit a segmented
	// archive with this many rows per segment by default; requests can
	// override it with ?segment-rows (0 restores the single stream).
	segmentRows int
	// pipelineSem admits at most maxConcurrent pipeline-running requests
	// (/compress and /query); nil means unlimited. Excess requests are
	// rejected with 429 rather than queued, so a saturated service sheds
	// load instead of stacking up memory-hungry pipelines.
	pipelineSem chan struct{}
}

// metrics is the full metric set; names are documented in
// docs/OBSERVABILITY.md.
type metrics struct {
	requests      obs.Counter   // spartan_http_requests_total{route,code}
	latency       obs.Histogram // spartan_http_request_duration_seconds{route}
	inFlight      obs.Gauge     // spartan_http_in_flight_requests
	panics        obs.Counter   // spartan_http_panics_total
	responseBytes obs.Counter   // spartan_http_response_bytes_total{route}

	rejected  obs.Counter // spartan_http_rejected_total{reason}
	pipelines obs.Gauge   // spartan_pipelines_in_flight

	ratio          obs.Histogram // spartan_compress_ratio
	predictedAttrs obs.Histogram // spartan_compress_predicted_attributes
	tolerance      obs.Histogram // spartan_compress_tolerance
	phaseSeconds   obs.Histogram // spartan_compress_phase_seconds{phase}
	rawBytes       obs.Counter   // spartan_compress_raw_bytes_total
	outBytes       obs.Counter   // spartan_compress_compressed_bytes_total

	queryLatency  obs.Histogram // spartan_query_duration_seconds
	querySegments obs.Counter   // spartan_query_segments_total{result}
}

// Option customizes the service.
type Option func(*Server)

// WithLogger sets the structured logger for access logs and panics
// (default slog.Default()).
func WithLogger(l *slog.Logger) Option { return func(s *Server) { s.log = l } }

// WithRegistry sets the metrics registry (default a fresh one). Pass a
// shared registry to also expose the metrics on a separate debug
// listener.
func WithRegistry(r *obs.Registry) Option { return func(s *Server) { s.reg = r } }

// WithMaxConcurrent bounds how many pipeline-running requests (/compress
// and /query) may execute at once; excess requests get 429 with a
// Retry-After hint. n <= 0 (the default) means unlimited.
func WithMaxConcurrent(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.pipelineSem = make(chan struct{}, n)
		} else {
			s.pipelineSem = nil
		}
	}
}

// WithRequestTimeout bounds how long a pipeline-running request may take;
// a compression that overruns is cancelled and answered with 503.
// d <= 0 (the default) means no timeout beyond the client's own.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.requestTimeout = d }
}

// WithSegmentRows makes /compress emit segmented archives with n rows
// per segment by default; requests override with ?segment-rows. n <= 0
// (the default) keeps the single-stream output.
func WithSegmentRows(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.segmentRows = n
		}
	}
}

// WithMaxBodyBytes bounds request bodies; larger uploads are rejected
// with 413 (default 1 GiB).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBodyBytes = n
		}
	}
}

// New returns the service's HTTP handler.
func New(opts ...Option) http.Handler {
	return newServer(opts...).routes()
}

// newServer builds the Server without its mux, so in-package tests can
// reach the semaphore and options directly.
func newServer(opts ...Option) *Server {
	s := &Server{log: slog.Default(), reg: obs.NewRegistry(), maxBodyBytes: maxRequestBytes}
	for _, o := range opts {
		o(s)
	}
	s.m = newMetrics(s.reg)
	s.spanObs = obs.NewSpanObserver(s.reg)
	return s
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("/healthz", handleHealth))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.reg.Handler().ServeHTTP))
	mux.Handle("POST /compress", s.instrument("/compress", s.limit(s.handleCompress)))
	mux.Handle("POST /decompress", s.instrument("/decompress", s.handleDecompress))
	mux.Handle("POST /query", s.instrument("/query", s.limit(s.handleQuery)))
	return mux
}

// limit is the overload-protection middleware for pipeline-running
// routes: it enforces the concurrency cap (429 + Retry-After when
// saturated), starts the per-request timeout, and maintains the
// in-flight-pipelines gauge.
func (s *Server) limit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.pipelineSem != nil {
			select {
			case s.pipelineSem <- struct{}{}:
				defer func() { <-s.pipelineSem }()
			default:
				s.m.rejected.Inc("concurrency")
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests,
					fmt.Errorf("server at capacity (%d pipelines in flight)", cap(s.pipelineSem)))
				return
			}
		}
		s.m.pipelines.Add(1)
		defer s.m.pipelines.Add(-1)
		if s.requestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		requests: reg.Counter("spartan_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		latency: reg.Histogram("spartan_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", obs.DefBuckets, "route"),
		inFlight: reg.Gauge("spartan_http_in_flight_requests",
			"Requests currently being served."),
		panics: reg.Counter("spartan_http_panics_total",
			"Handler panics recovered by the middleware."),
		responseBytes: reg.Counter("spartan_http_response_bytes_total",
			"Response body bytes written, by route.", "route"),
		ratio: reg.Histogram("spartan_compress_ratio",
			"Compression ratio (compressed/raw, smaller is better) per /compress call.",
			obs.LinearBuckets(0.05, 0.05, 19)),
		predictedAttrs: reg.Histogram("spartan_compress_predicted_attributes",
			"CaRT-predicted attribute count per /compress call.",
			obs.LinearBuckets(1, 1, 32)),
		tolerance: reg.Histogram("spartan_compress_tolerance",
			"Numeric error tolerance requested per /compress call (fraction of range).",
			[]float64{0, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}),
		phaseSeconds: reg.Histogram("spartan_compress_phase_seconds",
			"Pipeline phase duration in seconds, by phase (paper §4.2 accounting).",
			obs.DefBuckets, "phase"),
		rawBytes: reg.Counter("spartan_compress_raw_bytes_total",
			"Raw (uncompressed) bytes accepted by /compress."),
		outBytes: reg.Counter("spartan_compress_compressed_bytes_total",
			"Compressed bytes produced by /compress."),
		rejected: reg.Counter("spartan_http_rejected_total",
			"Requests rejected by overload protection, by reason (concurrency, timeout, body_too_large).", "reason"),
		pipelines: reg.Gauge("spartan_pipelines_in_flight",
			"Compression/query pipelines currently executing."),
		queryLatency: reg.Histogram("spartan_query_duration_seconds",
			"End-to-end /query pipeline duration in seconds (decode + aggregate).",
			obs.DefBuckets),
		querySegments: reg.Counter("spartan_query_segments_total",
			"Archive segments seen by /query, by result (decoded, pruned).", "result"),
	}
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// readTableBody parses the request body as CSV (text/csv) or the raw
// binary table format (anything else).
func (s *Server) readTableBody(r *http.Request) (*table.Table, error) {
	body := http.MaxBytesReader(nil, r.Body, s.maxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && mt == "text/csv" {
		return table.ReadCSV(body, nil)
	}
	return table.ReadBinary(body)
}

// bodyError answers a failed request-body read: 413 when the configured
// body limit truncated it, 400 for everything else.
func (s *Server) bodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.m.rejected.Inc("body_too_large")
		httpError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	httpError(w, http.StatusBadRequest, err)
}

// tolParams parses the shared tolerance request parameters: tolerance
// (numeric fraction of range) and cat-tolerance (categorical
// probability).
func tolParams(r *http.Request) (numeric, cat float64, err error) {
	parse := func(name string) (float64, error) {
		s := r.URL.Query().Get(name)
		if s == "" {
			return 0, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %w", name, err)
		}
		return v, nil
	}
	if numeric, err = parse("tolerance"); err != nil {
		return 0, 0, err
	}
	if cat, err = parse("cat-tolerance"); err != nil {
		return 0, 0, err
	}
	return numeric, cat, nil
}

// tolerancesFromQuery builds the tolerance vector from request
// parameters. The raw numeric fraction is also returned for the
// tolerance-distribution metric.
func tolerancesFromQuery(r *http.Request, t *table.Table) (table.Tolerances, float64, error) {
	numeric, cat, err := tolParams(r)
	if err != nil {
		return nil, 0, err
	}
	return table.UniformTolerances(t, numeric, cat), numeric, nil
}

// timingHeaders maps the X-Spartan-Timing-* header suffixes to the
// §4.2 phases, in pipeline order.
var timingHeaders = []struct {
	suffix string
	get    func(core.Timings) time.Duration
}{
	{"Dependency-Finder", func(t core.Timings) time.Duration { return t.DependencyFinder }},
	{"Cart-Selection", func(t core.Timings) time.Duration { return t.CaRTSelection }},
	{"Row-Aggregation", func(t core.Timings) time.Duration { return t.RowAggregation }},
	{"Outlier-Scan", func(t core.Timings) time.Duration { return t.OutlierScan }},
	{"Encode", func(t core.Timings) time.Duration { return t.Encode }},
	{"Total", core.Timings.Total},
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	t, err := s.readTableBody(r)
	if err != nil {
		s.bodyError(w, err)
		return
	}
	tol, numericTol, err := tolerancesFromQuery(r, t)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// Pipeline trace: as each phase finishes, its span feeds both the
	// compress-specific phase histogram and the generic spartan_phase_*
	// bridge families (with allocation attribution, hence
	// CaptureResources).
	tr := obs.NewTrace("compress")
	tr.CaptureResources()
	tr.OnSpanEnd(func(sp *obs.Span) {
		s.spanObs(sp)
		if sp.Name != core.SpanCompress {
			s.m.phaseSeconds.Observe(sp.Duration().Seconds(), sp.Name)
		}
	})

	opts := core.Options{Tolerances: tol, Trace: tr}
	switch sel := r.URL.Query().Get("selection"); sel {
	case "", "wmis-parents":
	case "wmis-markov":
		opts.Selection = core.SelectWMISMarkov
	case "greedy":
		opts.Selection = core.SelectGreedy
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown selection %q", sel))
		return
	}

	segRows := s.segmentRows
	if v := r.URL.Query().Get("segment-rows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad segment-rows %q", v))
			return
		}
		segRows = n
	}

	// Compress into memory first so errors can still become proper HTTP
	// statuses and stats can travel as headers. The buffer is sized off
	// the raw table: SPARTAN rarely exceeds a quarter of the input, so
	// RawBytes/4 avoids the append-regrow churn of an unsized buffer
	// without holding raw-sized memory per request.
	var buf bytes.Buffer
	if hint := t.RawSizeBytes() / 4; hint > 0 {
		buf.Grow(min(hint, 64<<20))
	}
	h := w.Header()
	if segRows > 0 {
		// Segmented archive: segments compress concurrently; the response
		// is a seekable v2 archive with zone maps for pruned /query calls.
		astats, err := archive.WriteTableContext(r.Context(), &buf, t, opts,
			archive.SegmentOptions{SegmentRows: segRows})
		if !s.answerCompressErr(w, err) {
			return
		}
		s.m.ratio.Observe(astats.Ratio)
		s.m.tolerance.Observe(numericTol)
		s.m.rawBytes.Add(float64(astats.RawBytes))
		s.m.outBytes.Add(float64(astats.CompressedBytes))
		h.Set("X-Spartan-Raw-Bytes", strconv.Itoa(astats.RawBytes))
		h.Set("X-Spartan-Compressed-Bytes", strconv.Itoa(astats.CompressedBytes))
		h.Set("X-Spartan-Ratio", strconv.FormatFloat(astats.Ratio, 'f', 4, 64))
		h.Set("X-Spartan-Segments", strconv.Itoa(astats.Segments))
	} else {
		stats, err := core.CompressContext(r.Context(), &buf, t, opts)
		if !s.answerCompressErr(w, err) {
			return
		}
		s.m.ratio.Observe(stats.Ratio)
		s.m.predictedAttrs.Observe(float64(len(stats.Predicted)))
		s.m.tolerance.Observe(numericTol)
		s.m.rawBytes.Add(float64(stats.RawBytes))
		s.m.outBytes.Add(float64(stats.CompressedBytes))
		h.Set("X-Spartan-Raw-Bytes", strconv.Itoa(stats.RawBytes))
		h.Set("X-Spartan-Compressed-Bytes", strconv.Itoa(stats.CompressedBytes))
		h.Set("X-Spartan-Ratio", strconv.FormatFloat(stats.Ratio, 'f', 4, 64))
		h.Set("X-Spartan-Predicted", strings.Join(stats.Predicted, ","))
		for _, th := range timingHeaders {
			h.Set("X-Spartan-Timing-"+th.suffix, th.get(stats.Timings).String())
		}
	}
	h.Set("Content-Type", "application/x-spartan")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // client went away
	}
}

// answerCompressErr maps a compression error to its HTTP response and
// reports whether the handler may proceed.
func (s *Server) answerCompressErr(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, context.DeadlineExceeded):
		// The per-request timeout cancelled the pipeline mid-flight.
		s.m.rejected.Inc("timeout")
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to answer.
	default:
		httpError(w, http.StatusUnprocessableEntity, err)
	}
	return false
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(nil, r.Body, s.maxBodyBytes)
	t, err := core.Decompress(body)
	if err != nil {
		s.bodyError(w, err)
		return
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/csv") {
		w.Header().Set("Content-Type", "text/csv")
		_ = table.WriteCSV(w, t)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = table.WriteBinary(w, t)
}

// queryResponse is the JSON shape of /query results.
type queryResponse struct {
	Agg    string          `json:"agg"`
	Column string          `json:"column,omitempty"`
	Groups []queryGroupDTO `json:"groups"`
}

type queryGroupDTO struct {
	Key       string   `json:"key,omitempty"`
	Value     *float64 `json:"value"` // null when no rows matched
	Lo        *float64 `json:"lo"`
	Hi        *float64 `json:"hi"`
	Rows      int      `json:"rows"`
	Uncertain int      `json:"uncertain"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// /query gets the same span treatment as /compress: a trace with one
	// child per stage, bridged into the spartan_phase_* families, with the
	// stage durations echoed as X-Spartan-Timing-* headers on success.
	tr := obs.NewTrace("query")
	tr.CaptureResources()
	tr.OnSpanEnd(s.spanObs)
	root := tr.Start("query")
	defer root.Finish()

	q := r.URL.Query()
	var agg query.AggKind
	switch strings.ToLower(q.Get("agg")) {
	case "", "count":
		agg = query.Count
	case "sum":
		agg = query.Sum
	case "avg":
		agg = query.Avg
	case "min":
		agg = query.Min
	case "max":
		agg = query.Max
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown agg %q", q.Get("agg")))
		return
	}
	numTol, catTol, err := tolParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec := query.Query{Agg: agg, Column: q.Get("col"), GroupBy: q.Get("groupby")}

	// The body is buffered so the container format can be sniffed by magic:
	// a segmented v2 archive answers through its footer — zone maps refute
	// segments before any decoding — while v1 archives and single streams
	// decode whole.
	body := http.MaxBytesReader(nil, r.Body, s.maxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		s.bodyError(w, err)
		return
	}

	var (
		res        *query.Result
		decodeSpan *obs.Span
		aggSpan    *obs.Span
	)
	if bytes.HasPrefix(data, []byte(archiveMagicV2)) {
		decodeSpan = root.StartChild("decode")
		sr, err := archive.OpenSegmented(bytes.NewReader(data))
		decodeSpan.Finish()
		if err != nil {
			s.bodyError(w, err)
			return
		}
		if spec.Where, err = query.ParsePredicate(q.Get("where"), sr.Schema()); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		tol := table.UniformTolerancesSchema(sr.Schema(), numTol, catTol)
		aggSpan = root.StartChild("aggregate")
		var qs *archive.QueryStats
		res, qs, err = sr.Query(tol, spec)
		aggSpan.Finish()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		s.m.querySegments.Add(float64(qs.Decoded), "decoded")
		s.m.querySegments.Add(float64(qs.Pruned), "pruned")
		w.Header().Set("X-Spartan-Segments-Decoded", strconv.Itoa(qs.Decoded))
		w.Header().Set("X-Spartan-Segments-Pruned", strconv.Itoa(qs.Pruned))
	} else {
		decodeSpan = root.StartChild("decode")
		var t *table.Table
		if bytes.HasPrefix(data, []byte(archiveMagicV1)) {
			t, err = archive.ReadAll(bytes.NewReader(data))
		} else {
			t, err = core.Decompress(bytes.NewReader(data))
		}
		decodeSpan.Finish()
		if err != nil {
			s.bodyError(w, err)
			return
		}
		// Decompression can eat most of a tight request timeout; bail before
		// the aggregation stage if the deadline already passed.
		if err := r.Context().Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				s.m.rejected.Inc("timeout")
				httpError(w, http.StatusServiceUnavailable, err)
			}
			return
		}
		if spec.Where, err = query.ParsePredicate(q.Get("where"), t.Schema()); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		tol := table.UniformTolerances(t, numTol, catTol)
		aggSpan = root.StartChild("aggregate")
		res, err = query.Run(t, tol, spec)
		aggSpan.Finish()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	resp := queryResponse{Agg: agg.String(), Column: spec.Column}
	for _, g := range res.Groups {
		dto := queryGroupDTO{Key: g.Key, Rows: g.Rows, Uncertain: g.UncertainRows}
		if !math.IsNaN(g.Value) {
			v, lo, hi := g.Value, g.Lo, g.Hi
			dto.Value, dto.Lo, dto.Hi = &v, &lo, &hi
		}
		resp.Groups = append(resp.Groups, dto)
	}
	// Close the root before stamping headers so Total is frozen (Finish is
	// idempotent; the deferred call becomes a no-op).
	root.Finish()
	s.m.queryLatency.Observe(root.Duration().Seconds())
	h := w.Header()
	h.Set("X-Spartan-Timing-Decode", decodeSpan.Duration().String())
	h.Set("X-Spartan-Timing-Aggregate", aggSpan.Duration().String())
	h.Set("X-Spartan-Timing-Total", root.Duration().String())
	h.Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// discardLogger is a logger for tests and callers that want silence.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
