package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/table"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(WithLogger(discardLogger())))
	t.Cleanup(srv.Close)
	return srv
}

func tableBody(t *testing.T, tb *table.Table) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := table.WriteBinary(&buf, tb); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestHealth(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	srv := testServer(t)
	tb := datagen.CDR(1500, 1)

	resp, err := http.Post(srv.URL+"/compress?tolerance=0.01", "application/octet-stream", tableBody(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("compress status = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Spartan-Ratio") == "" {
		t.Error("missing ratio header")
	}
	compressed, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= tb.RawSizeBytes() {
		t.Errorf("compressed %d B >= raw %d B", len(compressed), tb.RawSizeBytes())
	}

	resp2, err := http.Post(srv.URL+"/decompress", "application/x-spartan", bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("decompress status = %d", resp2.StatusCode)
	}
	back, err := table.ReadBinary(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() || back.NumCols() != tb.NumCols() {
		t.Errorf("restored shape %dx%d", back.NumRows(), back.NumCols())
	}
	diffs, err := table.MaxAbsDiff(tb, back)
	if err != nil {
		t.Fatal(err)
	}
	tol, err := table.UniformTolerances(tb, 0.01, 0).Resolve(tb)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range diffs {
		if d > tol[i].Value+1e-9 {
			t.Errorf("attribute %d error %g > %g", i, d, tol[i].Value)
		}
	}
}

func TestCompressCSVInput(t *testing.T) {
	srv := testServer(t)
	csv := "x,y\n1,a\n2,b\n3,a\n"
	resp, err := http.Post(srv.URL+"/compress", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	// Decompress back as CSV.
	compressed, _ := io.ReadAll(resp.Body)
	req, err := http.NewRequest("POST", srv.URL+"/decompress", bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/csv")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	out, _ := io.ReadAll(resp2.Body)
	if string(out) != csv {
		t.Errorf("CSV round trip:\n%s\nwant:\n%s", out, csv)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	tb := datagen.CDR(2000, 2)
	resp, err := http.Post(srv.URL+"/compress?tolerance=0.01", "application/octet-stream", tableBody(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	compressed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	url := srv.URL + "/query?agg=avg&col=charge_cents&groupby=plan&tolerance=0.01&where=" +
		"duration_sec%20%3E%20100"
	resp2, err := http.Post(url, "application/x-spartan", bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		t.Fatalf("query status = %d: %s", resp2.StatusCode, body)
	}
	var out queryResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Agg != "AVG" || len(out.Groups) != 3 {
		t.Errorf("response %+v, want AVG with 3 plan groups", out)
	}
	for _, g := range out.Groups {
		if g.Value == nil || g.Lo == nil || g.Hi == nil {
			t.Errorf("group %q missing values", g.Key)
			continue
		}
		if *g.Lo > *g.Value || *g.Value > *g.Hi {
			t.Errorf("group %q: value %g outside [%g, %g]", g.Key, *g.Value, *g.Lo, *g.Hi)
		}
	}
	// /query reports its stage timings like /compress does (§4.2 parity).
	for _, hdr := range []string{"X-Spartan-Timing-Decode", "X-Spartan-Timing-Aggregate", "X-Spartan-Timing-Total"} {
		v := resp2.Header.Get(hdr)
		if v == "" {
			t.Errorf("missing %s header", hdr)
			continue
		}
		if _, err := time.ParseDuration(v); err != nil {
			t.Errorf("%s = %q: %v", hdr, v, err)
		}
	}
}

// TestPhaseMetricsExposition: one compress and one query must populate
// the query-latency histogram and the generic spartan_phase_* bridge
// families (per-trace, per-phase durations and allocation attribution)
// on /metrics.
func TestPhaseMetricsExposition(t *testing.T) {
	srv := testServer(t)
	tb := datagen.CDR(1200, 4)
	resp, err := http.Post(srv.URL+"/compress?tolerance=0.01", "application/octet-stream", tableBody(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	compressed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	resp2, err := http.Post(srv.URL+"/query?agg=count", "application/x-spartan", bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp2.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`spartan_query_duration_seconds_count 1`,
		`spartan_phase_duration_seconds_count{trace="query",phase="decode"} 1`,
		`spartan_phase_duration_seconds_count{trace="query",phase="aggregate"} 1`,
		`spartan_phase_duration_seconds_count{trace="compress",phase="cart_selection"} 1`,
		`spartan_phase_alloc_bytes_count{trace="compress",phase="encode"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSegmentedCompressAndQuery: /compress?segment-rows= yields a v2
// archive, and /query answers it through the footer, pruning zone-map
// refuted segments without decoding them (visible in headers and the
// spartan_query_segments_total counter).
func TestSegmentedCompressAndQuery(t *testing.T) {
	srv := testServer(t)
	// The leading column increases with the row index, so each segment
	// covers a disjoint value range and a range predicate can refute
	// whole segments.
	b, err := table.NewBuilder(table.Schema{
		{Name: "v", Kind: table.Numeric},
		{Name: "g", Kind: table.Categorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"a", "b"}
	for i := 0; i < 2000; i++ {
		b.MustAppendRow(float64(i), groups[i%2])
	}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/compress?segment-rows=500", "application/octet-stream", tableBody(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("compress status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Spartan-Segments"); got != "4" {
		t.Errorf("X-Spartan-Segments = %q, want 4", got)
	}
	compressed, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(compressed, []byte("SPARC2\n")) {
		t.Fatalf("compressed body does not start with the v2 archive magic")
	}

	// v > 1700 refutes the first three segments ([0,500), [500,1000),
	// [1000,1500)); only the last can match.
	resp2, err := http.Post(srv.URL+"/query?agg=count&where=v+%3E+1700",
		"application/x-spartan", bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		t.Fatalf("query status = %d: %s", resp2.StatusCode, body)
	}
	if got := resp2.Header.Get("X-Spartan-Segments-Pruned"); got != "3" {
		t.Errorf("X-Spartan-Segments-Pruned = %q, want 3", got)
	}
	if got := resp2.Header.Get("X-Spartan-Segments-Decoded"); got != "1" {
		t.Errorf("X-Spartan-Segments-Decoded = %q, want 1", got)
	}
	var out queryResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Groups) != 1 || out.Groups[0].Value == nil || *out.Groups[0].Value != 299 {
		t.Errorf("count response %+v, want one group of 299 rows", out)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`spartan_query_segments_total{result="pruned"} 3`,
		`spartan_query_segments_total{result="decoded"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	tb := datagen.CDR(100, 3)

	post := func(url, ct string, body io.Reader) int {
		resp, err := http.Post(url, ct, body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body) // draining only; the asserts below are on the status
		return resp.StatusCode
	}

	if code := post(srv.URL+"/compress", "application/octet-stream", strings.NewReader("garbage")); code != http.StatusBadRequest {
		t.Errorf("garbage table: status %d", code)
	}
	if code := post(srv.URL+"/compress?tolerance=abc", "application/octet-stream", tableBody(t, tb)); code != http.StatusBadRequest {
		t.Errorf("bad tolerance: status %d", code)
	}
	if code := post(srv.URL+"/compress?selection=nope", "application/octet-stream", tableBody(t, tb)); code != http.StatusBadRequest {
		t.Errorf("bad selection: status %d", code)
	}
	if code := post(srv.URL+"/decompress", "application/x-spartan", strings.NewReader("garbage")); code != http.StatusBadRequest {
		t.Errorf("garbage stream: status %d", code)
	}
	if code := post(srv.URL+"/query?agg=frobnicate", "application/x-spartan", strings.NewReader("garbage")); code != http.StatusBadRequest {
		t.Errorf("garbage query: status %d", code)
	}

	// Valid stream, invalid query column.
	var buf bytes.Buffer
	if err := table.WriteBinary(&buf, tb); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/compress", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	compressed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if code := post(srv.URL+"/query?agg=sum&col=missing", "application/x-spartan", bytes.NewReader(compressed)); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown column: status %d", code)
	}
	// GET on a POST route.
	respGet, err := http.Get(srv.URL + "/compress")
	if err != nil {
		t.Fatal(err)
	}
	respGet.Body.Close()
	if respGet.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compress: status %d", respGet.StatusCode)
	}
}
