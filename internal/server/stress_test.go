package server

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/datagen"
)

// TestStressConcurrentTraffic hammers one server with interleaved
// /compress and /query requests. The handlers share the obs registry,
// the overload limiter, and the parallel pipeline underneath, so this
// is the load-shaped counterpart to the conc analyzers' static
// guarantees — it exists to fail under -race if any of those shared
// structures regress. Runs in CI's race job; skipped under -short.
func TestStressConcurrentTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: meaningful only under -race in the full run")
	}

	srv := testServer(t)
	tb := datagen.CDR(900, 7)
	raw := tableBody(t, tb).Bytes()

	// One compressed archive up front so query workers start immediately
	// instead of serializing behind their own compress round. With no
	// concurrent traffic yet the limiter must not shed this one.
	compressed := compressOnce(t, srv.URL, raw)
	if len(compressed) == 0 {
		t.Fatal("initial compress was shed by the limiter with no concurrent load")
	}

	const workers = 6
	const reqsPerWorker = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reqsPerWorker; i++ {
				if w%2 == 0 {
					blob := compressOnce(t, srv.URL, raw)
					if len(blob) == 0 {
						return
					}
				} else {
					resp, err := http.Post(
						srv.URL+"/query?agg=avg&col=charge_cents&groupby=plan&tolerance=0.01&where=duration_sec%20%3E%20100",
						"application/x-spartan", bytes.NewReader(compressed))
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					// 429 is the overload limiter shedding load as
					// designed; anything else non-200 is a bug.
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("query status = %d: %s", resp.StatusCode, body)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// compressOnce posts one table and returns the archive, tolerating the
// overload limiter's 429 (returns nil) but failing on anything else.
func compressOnce(t *testing.T, baseURL string, raw []byte) []byte {
	t.Helper()
	resp, err := http.Post(baseURL+"/compress?tolerance=0.01", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Errorf("compress: %v", err)
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("compress read: %v", err)
		return nil
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("compress status = %d: %s", resp.StatusCode, body)
		return nil
	}
	return body
}
