// Package stats provides the statistical substrate for SPARTAN's
// DependencyFinder: entropy, (conditional) mutual information, chi-square
// tests over contingency tables, and equi-depth discretization of numeric
// attributes. All quantities operate on integer-coded columns so the
// Bayesian-network builder can treat numeric and categorical attributes
// uniformly after discretization.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Log2 of x with 0·log0 = 0 convention handled by callers.
func log2(x float64) float64 { return math.Log2(x) }

// Entropy returns the Shannon entropy (bits) of an integer-coded vector
// whose values lie in [0, card).
func Entropy(codes []int, card int) float64 {
	if len(codes) == 0 {
		return 0
	}
	counts := make([]int, card)
	for _, c := range codes {
		counts[c]++
	}
	n := float64(len(codes))
	h := 0.0
	for _, cnt := range counts {
		if cnt == 0 {
			continue
		}
		p := float64(cnt) / n
		h -= p * log2(p)
	}
	return h
}

// MutualInformation returns I(X;Y) in bits for two equal-length
// integer-coded vectors with cardinalities cx and cy.
func MutualInformation(x, y []int, cx, cy int) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	joint := make([]int, cx*cy)
	mx := make([]int, cx)
	my := make([]int, cy)
	for i := range x {
		joint[x[i]*cy+y[i]]++
		mx[x[i]]++
		my[y[i]]++
	}
	n := float64(len(x))
	mi := 0.0
	for xi := 0; xi < cx; xi++ {
		if mx[xi] == 0 {
			continue
		}
		for yi := 0; yi < cy; yi++ {
			c := joint[xi*cy+yi]
			if c == 0 {
				continue
			}
			pxy := float64(c) / n
			px := float64(mx[xi]) / n
			py := float64(my[yi]) / n
			mi += pxy * log2(pxy/(px*py))
		}
	}
	if mi < 0 { // numerical noise
		mi = 0
	}
	return mi
}

// ConditionalMutualInformation returns I(X;Y|Z) in bits, where z is an
// integer-coded conditioning vector with cardinality cz. Z is typically a
// composite code built with CompositeCodes from several conditioning
// attributes.
func ConditionalMutualInformation(x, y, z []int, cx, cy, cz int) float64 {
	if len(x) != len(y) || len(x) != len(z) {
		panic(fmt.Sprintf("stats: length mismatch %d/%d/%d", len(x), len(y), len(z)))
	}
	if len(x) == 0 {
		return 0
	}
	// Group rows by z value and sum per-stratum weighted MI.
	byZ := make(map[int][]int)
	for i, zi := range z {
		byZ[zi] = append(byZ[zi], i)
	}
	n := float64(len(x))
	cmi := 0.0
	xs := make([]int, 0, 64)
	ys := make([]int, 0, 64)
	for _, rows := range byZ {
		xs = xs[:0]
		ys = ys[:0]
		for _, r := range rows {
			xs = append(xs, x[r])
			ys = append(ys, y[r])
		}
		cmi += float64(len(rows)) / n * MutualInformation(xs, ys, cx, cy)
	}
	return cmi
}

// CompositeCodes combines several integer-coded columns into a single code
// per row, with the combined cardinality returned. Only combinations that
// actually occur receive codes, keeping the cardinality equal to the number
// of distinct observed tuples (important for CI tests on samples).
func CompositeCodes(cols [][]int) (codes []int, card int) {
	if len(cols) == 0 {
		return nil, 1
	}
	n := len(cols[0])
	codes = make([]int, n)
	index := make(map[string]int)
	key := make([]byte, 0, len(cols)*3)
	for i := 0; i < n; i++ {
		key = key[:0]
		for _, c := range cols {
			v := c[i]
			key = append(key, byte(v), byte(v>>8), byte(v>>16), 0xFF)
		}
		k := string(key)
		code, ok := index[k]
		if !ok {
			code = len(index)
			index[k] = code
		}
		codes[i] = code
	}
	return codes, len(index)
}

// ChiSquare computes the chi-square statistic and degrees of freedom for
// independence of two integer-coded vectors. Rows/columns with zero
// marginals are excluded from the degrees of freedom.
func ChiSquare(x, y []int, cx, cy int) (statistic float64, dof int) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(x), len(y)))
	}
	joint := make([]float64, cx*cy)
	mx := make([]float64, cx)
	my := make([]float64, cy)
	for i := range x {
		joint[x[i]*cy+y[i]]++
		mx[x[i]]++
		my[y[i]]++
	}
	n := float64(len(x))
	if n == 0 {
		return 0, 0
	}
	stat := 0.0
	nzx, nzy := 0, 0
	for _, v := range mx {
		if v > 0 {
			nzx++
		}
	}
	for _, v := range my {
		if v > 0 {
			nzy++
		}
	}
	for xi := 0; xi < cx; xi++ {
		if mx[xi] == 0 {
			continue
		}
		for yi := 0; yi < cy; yi++ {
			if my[yi] == 0 {
				continue
			}
			expected := mx[xi] * my[yi] / n
			d := joint[xi*cy+yi] - expected
			stat += d * d / expected
		}
	}
	dof = (nzx - 1) * (nzy - 1)
	if dof < 0 {
		dof = 0
	}
	return stat, dof
}

// Discretizer maps numeric values into equi-depth bins. Bin boundaries are
// chosen from sorted sample quantiles; values map to the bin whose
// right-open interval contains them.
type Discretizer struct {
	// Cuts holds the right-open upper boundaries of all bins except the
	// last; a value v maps to the first bin i with v < Cuts[i], else to
	// bin len(Cuts).
	Cuts []float64
}

// NewDiscretizer builds an equi-depth discretizer with at most bins bins
// from the given values. Duplicate quantiles are merged, so the effective
// number of bins can be smaller for skewed data.
func NewDiscretizer(values []float64, bins int) *Discretizer {
	if bins < 1 {
		bins = 1
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	cuts := make([]float64, 0, bins-1)
	n := len(sorted)
	for b := 1; b < bins && n > 0; b++ {
		q := sorted[b*n/bins]
		// A cut at or below the minimum would create an empty leading bin.
		if q <= sorted[0] {
			continue
		}
		if len(cuts) == 0 || q > cuts[len(cuts)-1] {
			cuts = append(cuts, q)
		}
	}
	return &Discretizer{Cuts: cuts}
}

// Bins returns the number of bins.
func (d *Discretizer) Bins() int { return len(d.Cuts) + 1 }

// Code maps a value to its bin index.
func (d *Discretizer) Code(v float64) int {
	// Binary search the first cut greater than v.
	lo, hi := 0, len(d.Cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < d.Cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// CodeAll maps a whole slice.
func (d *Discretizer) CodeAll(values []float64) []int {
	out := make([]int, len(values))
	for i, v := range values {
		out[i] = d.Code(v)
	}
	return out
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Variance returns the population variance of values.
func Variance(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := Mean(values)
	s := 0.0
	for _, v := range values {
		d := v - m
		s += d * d
	}
	return s / float64(len(values))
}
