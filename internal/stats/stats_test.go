package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, eps float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Errorf("%s = %g, want %g (±%g)", msg, got, want, eps)
	}
}

func TestEntropy(t *testing.T) {
	approx(t, Entropy([]int{0, 1, 0, 1}, 2), 1, 1e-12, "H(fair coin)")
	approx(t, Entropy([]int{0, 0, 0, 0}, 2), 0, 1e-12, "H(constant)")
	approx(t, Entropy(nil, 2), 0, 1e-12, "H(empty)")
	approx(t, Entropy([]int{0, 1, 2, 3}, 4), 2, 1e-12, "H(uniform 4)")
}

func TestMutualInformationIdentical(t *testing.T) {
	x := []int{0, 1, 0, 1, 1, 0}
	// I(X;X) = H(X)
	approx(t, MutualInformation(x, x, 2, 2), Entropy(x, 2), 1e-12, "I(X;X)")
}

func TestMutualInformationIndependent(t *testing.T) {
	// Perfectly balanced independent design: MI must be exactly 0.
	var x, y []int
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			x = append(x, i%2)
			y = append(y, j%2)
		}
	}
	approx(t, MutualInformation(x, y, 2, 2), 0, 1e-12, "I(indep)")
}

func TestMutualInformationNonNegativeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n)%100 + 1
		x := make([]int, m)
		y := make([]int, m)
		for i := range x {
			x[i] = rng.Intn(4)
			y[i] = rng.Intn(3)
		}
		mi := MutualInformation(x, y, 4, 3)
		hx := Entropy(x, 4)
		hy := Entropy(y, 3)
		// 0 <= I(X;Y) <= min(H(X), H(Y))
		return mi >= 0 && mi <= math.Min(hx, hy)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMutualInformationSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]int, n)
		y := make([]int, n)
		for i := range x {
			x[i] = rng.Intn(3)
			y[i] = rng.Intn(5)
		}
		a := MutualInformation(x, y, 3, 5)
		b := MutualInformation(y, x, 5, 3)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConditionalMutualInformation(t *testing.T) {
	// Y = X exactly, Z constant: I(X;Y|Z) = H(X).
	x := []int{0, 1, 0, 1, 1, 1, 0, 0}
	z := make([]int, len(x))
	approx(t, ConditionalMutualInformation(x, x, z, 2, 2, 1), Entropy(x, 2), 1e-12, "I(X;X|const)")

	// Y = Z, X independent: conditioning on Z removes all information.
	y := []int{0, 0, 1, 1, 0, 0, 1, 1}
	approx(t, ConditionalMutualInformation(x, y, y, 2, 2, 2),
		0, 1e-9, "I(X;Z|Z)")
}

func TestConditionalMIScreensChain(t *testing.T) {
	// Chain X -> Z -> Y where Y == Z == X: I(X;Y) > 0 but I(X;Y|Z) = 0.
	n := 200
	rng := rand.New(rand.NewSource(3))
	x := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(2)
	}
	z := append([]int(nil), x...)
	y := append([]int(nil), z...)
	if MutualInformation(x, y, 2, 2) <= 0.5 {
		t.Fatal("setup: marginal MI should be large")
	}
	approx(t, ConditionalMutualInformation(x, y, z, 2, 2, 2), 0, 1e-9, "I(X;Y|Z) on chain")
}

func TestCompositeCodes(t *testing.T) {
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	codes, card := CompositeCodes([][]int{a, b})
	if card != 4 {
		t.Fatalf("card = %d, want 4", card)
	}
	seen := map[int]bool{}
	for _, c := range codes {
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Errorf("codes = %v, want 4 distinct", codes)
	}

	// Empty input.
	c2, card2 := CompositeCodes(nil)
	if c2 != nil || card2 != 1 {
		t.Errorf("CompositeCodes(nil) = %v, %d; want nil, 1", c2, card2)
	}

	// Only observed combinations get codes.
	a3 := []int{0, 1, 0, 1}
	b3 := []int{0, 1, 0, 1}
	_, card3 := CompositeCodes([][]int{a3, b3})
	if card3 != 2 {
		t.Errorf("card = %d, want 2 (only 2 observed combos)", card3)
	}
}

func TestChiSquare(t *testing.T) {
	// Perfect dependence in a 2x2 table, n=40: chi2 = n.
	x := make([]int, 40)
	y := make([]int, 40)
	for i := range x {
		x[i] = i % 2
		y[i] = i % 2
	}
	stat, dof := ChiSquare(x, y, 2, 2)
	approx(t, stat, 40, 1e-9, "chi2(perfect)")
	if dof != 1 {
		t.Errorf("dof = %d, want 1", dof)
	}

	// Balanced independence: chi2 = 0.
	var xi, yi []int
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			xi = append(xi, i)
			yi = append(yi, j)
		}
	}
	stat0, _ := ChiSquare(xi, yi, 2, 2)
	approx(t, stat0, 0, 1e-12, "chi2(indep)")

	// Empty marginal categories don't count toward dof.
	_, dof2 := ChiSquare([]int{0, 0}, []int{0, 1}, 5, 3)
	if dof2 != 0 {
		t.Errorf("dof with single x level = %d, want 0", dof2)
	}
}

func TestDiscretizerEquiDepth(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	d := NewDiscretizer(values, 4)
	if d.Bins() != 4 {
		t.Fatalf("Bins = %d, want 4", d.Bins())
	}
	counts := make([]int, 4)
	for _, v := range values {
		counts[d.Code(v)]++
	}
	for b, c := range counts {
		if c != 25 {
			t.Errorf("bin %d has %d values, want 25", b, c)
		}
	}
}

func TestDiscretizerSkewedMergesBins(t *testing.T) {
	values := make([]float64, 100)
	for i := 10; i < 100; i++ {
		values[i] = 1 // 90% mass at a single point
	}
	d := NewDiscretizer(values, 10)
	if d.Bins() >= 10 {
		t.Errorf("Bins = %d; skewed data should merge duplicate quantiles", d.Bins())
	}
	for _, v := range values {
		if c := d.Code(v); c < 0 || c >= d.Bins() {
			t.Fatalf("Code(%g) = %d out of range", v, c)
		}
	}
}

func TestDiscretizerEdgeCases(t *testing.T) {
	d := NewDiscretizer(nil, 5)
	if d.Bins() != 1 {
		t.Errorf("empty data Bins = %d, want 1", d.Bins())
	}
	if d.Code(42) != 0 {
		t.Errorf("Code on binless discretizer = %d, want 0", d.Code(42))
	}
	d1 := NewDiscretizer([]float64{3, 3, 3}, 4)
	if d1.Bins() != 1 {
		t.Errorf("constant data Bins = %d, want 1", d1.Bins())
	}
	// bins < 1 clamps to 1.
	d2 := NewDiscretizer([]float64{1, 2}, 0)
	if d2.Bins() != 1 {
		t.Errorf("bins=0 gives Bins = %d, want 1", d2.Bins())
	}
}

func TestDiscretizerCodeAllMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, 50)
		for i := range values {
			values[i] = rng.Float64() * 100
		}
		d := NewDiscretizer(values, 6)
		codes := d.CodeAll(values)
		for i, v := range values {
			for j, w := range values {
				if v < w && codes[i] > codes[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMeanVariance(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3}), 2, 1e-12, "Mean")
	approx(t, Mean(nil), 0, 1e-12, "Mean(empty)")
	approx(t, Variance([]float64{2, 2, 2}), 0, 1e-12, "Var(const)")
	approx(t, Variance([]float64{1, 3}), 1, 1e-12, "Var")
	approx(t, Variance(nil), 0, 1e-12, "Var(empty)")
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MutualInformation did not panic on length mismatch")
		}
	}()
	MutualInformation([]int{0}, []int{0, 1}, 2, 2)
}
