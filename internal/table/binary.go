package table

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The raw binary format defines the "uncompressed input size" used as the
// denominator of every compression ratio in the benchmarks, mirroring the
// paper's fixed-length record layout (§1: CDRs are fixed-length records):
// numeric cells are 4-byte IEEE floats, categorical cells are fixed-width
// code fields of ceil(log2 |dom|)/8 bytes (min 1).

const rawMagic = "SPTBL1\n"

// RawBytesPerRow returns the fixed-length record width of one tuple in the
// raw binary format.
func (t *Table) RawBytesPerRow() int {
	w := 0
	for _, c := range t.cols {
		w += cellBytes(c)
	}
	return w
}

// RawSizeBytes returns the total raw binary payload size of the table
// (records only, excluding the small schema header). This is the
// uncompressed-size baseline for compression ratios.
func (t *Table) RawSizeBytes() int {
	return t.rows * t.RawBytesPerRow()
}

func cellBytes(c *Column) int {
	if c.Kind == Numeric {
		return 4
	}
	return codeBytes(len(c.Dict))
}

func codeBytes(domain int) int {
	switch {
	case domain <= 1<<8:
		return 1
	case domain <= 1<<16:
		return 2
	case domain <= 1<<24:
		return 3
	default:
		return 4
	}
}

// WriteBinary serializes the table in the raw fixed-length record format
// with a self-describing header (magic, schema, dictionaries, row count).
func WriteBinary(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rawMagic); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(t.schema))); err != nil {
		return err
	}
	for i, a := range t.schema {
		if err := writeString(bw, a.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(a.Kind)); err != nil {
			return err
		}
		if a.Kind == Categorical {
			dict := t.cols[i].Dict
			if err := writeUvarint(bw, uint64(len(dict))); err != nil {
				return err
			}
			for _, s := range dict {
				if err := writeString(bw, s); err != nil {
					return err
				}
			}
		}
	}
	if err := writeUvarint(bw, uint64(t.rows)); err != nil {
		return err
	}
	var buf [4]byte
	for r := 0; r < t.rows; r++ {
		for _, c := range t.cols {
			if c.Kind == Numeric {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(c.Floats[r])))
				if _, err := bw.Write(buf[:4]); err != nil {
					return err
				}
				continue
			}
			nb := codeBytes(len(c.Dict))
			v := uint32(c.Codes[r])
			binary.LittleEndian.PutUint32(buf[:], v)
			if _, err := bw.Write(buf[:nb]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a table written by WriteBinary. Note that numeric
// values round-trip through float32 (the raw record layout), matching the
// 4-byte-value cost model used throughout.
func ReadBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(rawMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("table: reading binary magic: %w", err)
	}
	if string(magic) != rawMagic {
		return nil, fmt.Errorf("table: bad binary magic %q", magic)
	}
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("table: reading column count: %w", err)
	}
	if ncols == 0 || ncols > 1<<16 {
		return nil, fmt.Errorf("table: implausible column count %d", ncols)
	}
	schema := make(Schema, ncols)
	cols := make([]*Column, ncols)
	for i := range schema {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("table: reading attribute name: %w", err)
		}
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("table: reading attribute kind: %w", err)
		}
		kind := Kind(kindByte)
		if kind != Numeric && kind != Categorical {
			return nil, fmt.Errorf("table: unknown attribute kind %d", kindByte)
		}
		schema[i] = Attribute{Name: name, Kind: kind}
		cols[i] = &Column{Kind: kind}
		if kind == Categorical {
			dlen, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("table: reading dictionary size: %w", err)
			}
			if dlen > 1<<22 {
				return nil, fmt.Errorf("table: implausible dictionary size %d", dlen)
			}
			dict := make([]string, 0, minCap(int(dlen), 1<<12))
			for d := uint64(0); d < dlen; d++ {
				s, err := readString(br)
				if err != nil {
					return nil, fmt.Errorf("table: reading dictionary entry: %w", err)
				}
				dict = append(dict, s)
			}
			cols[i].Dict = dict
		}
	}
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("table: reading row count: %w", err)
	}
	if nrows > 1<<34 {
		return nil, fmt.Errorf("table: implausible row count %d", nrows)
	}
	// Columns grow incrementally so a lying row count in the header cannot
	// force a huge allocation before the stream runs out of records.
	initialCap := int(nrows)
	if initialCap > 1<<16 {
		initialCap = 1 << 16
	}
	for i := range cols {
		if cols[i].Kind == Numeric {
			cols[i].Floats = make([]float64, 0, initialCap)
		} else {
			cols[i].Codes = make([]int32, 0, initialCap)
		}
	}
	var buf [4]byte
	for r := uint64(0); r < nrows; r++ {
		for _, c := range cols {
			if c.Kind == Numeric {
				if _, err := io.ReadFull(br, buf[:4]); err != nil {
					return nil, fmt.Errorf("table: reading record %d: %w", r, err)
				}
				c.Floats = append(c.Floats, float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))))
				continue
			}
			nb := codeBytes(len(c.Dict))
			buf = [4]byte{}
			if _, err := io.ReadFull(br, buf[:nb]); err != nil {
				return nil, fmt.Errorf("table: reading record %d: %w", r, err)
			}
			code := int32(binary.LittleEndian.Uint32(buf[:]))
			if int(code) >= len(c.Dict) {
				return nil, fmt.Errorf("table: record %d has code %d outside dictionary of %d", r, code, len(c.Dict))
			}
			c.Codes = append(c.Codes, code)
		}
	}
	return New(schema, cols)
}

func minCap(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("table: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
