package table

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	tb := paperTable(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Values here are exactly representable as float32, so strict equality
	// holds.
	if !Equal(tb, got) {
		t.Error("binary round trip changed table")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	tb := paperTable(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tb); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("ReadBinary accepted truncated stream")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("ReadBinary accepted bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("ReadBinary accepted empty stream")
	}
}

func TestRawSizeBytes(t *testing.T) {
	tb := paperTable(t)
	// 3 numeric * 4 bytes + 1 categorical (2 values -> 1 byte) = 13/row.
	if got, want := tb.RawBytesPerRow(), 13; got != want {
		t.Errorf("RawBytesPerRow = %d, want %d", got, want)
	}
	if got, want := tb.RawSizeBytes(), 13*8; got != want {
		t.Errorf("RawSizeBytes = %d, want %d", got, want)
	}
}

func TestCodeBytes(t *testing.T) {
	cases := []struct{ dom, want int }{
		{1, 1}, {2, 1}, {256, 1}, {257, 2}, {1 << 16, 2}, {1<<16 + 1, 3},
		{1 << 24, 3}, {1<<24 + 1, 4},
	}
	for _, c := range cases {
		if got := codeBytes(c.dom); got != c.want {
			t.Errorf("codeBytes(%d) = %d, want %d", c.dom, got, c.want)
		}
	}
}

// randomTable builds a random mixed table for property tests. Numeric
// values are quantized to float32-representable grid points so the binary
// format round-trips exactly.
func randomTable(rng *rand.Rand, rows int) *Table {
	schema := Schema{
		{Name: "n1", Kind: Numeric},
		{Name: "n2", Kind: Numeric},
		{Name: "c1", Kind: Categorical},
		{Name: "c2", Kind: Categorical},
	}
	b := MustBuilder(schema)
	cats := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < rows; i++ {
		b.MustAppendRow(
			float64(rng.Intn(2000))/4,
			float64(rng.Intn(100)),
			cats[rng.Intn(len(cats))],
			cats[rng.Intn(3)],
		)
	}
	return b.MustBuild()
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, rows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, int(rows)+1)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tb); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return Equal(tb, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSampleProperty(t *testing.T) {
	f := func(seed int64, rows uint8, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, int(rows)+1)
		n := int(k) % (tb.NumRows() + 2)
		s := tb.Sample(n, rng)
		if n >= tb.NumRows() {
			return s.NumRows() == tb.NumRows()
		}
		return s.NumRows() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSampleBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := randomTable(rng, 1000)
	s := tb.SampleBytes(100*tb.RawBytesPerRow(), rng)
	if s.NumRows() != 100 {
		t.Errorf("SampleBytes rows = %d, want 100", s.NumRows())
	}
	// Tiny budget still yields one row.
	s1 := tb.SampleBytes(1, rng)
	if s1.NumRows() != 1 {
		t.Errorf("SampleBytes(1) rows = %d, want 1", s1.NumRows())
	}
	// Huge budget returns the table itself.
	if s2 := tb.SampleBytes(1<<30, rng); s2 != tb {
		t.Error("SampleBytes with huge budget should return the original table")
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	tb := randomTable(rand.New(rand.NewSource(7)), 500)
	a := tb.Sample(50, rand.New(rand.NewSource(42)))
	b := tb.Sample(50, rand.New(rand.NewSource(42)))
	if !Equal(a, b) {
		t.Error("same seed produced different samples")
	}
}

func TestToleranceResolve(t *testing.T) {
	tb := paperTable(t)
	tol := UniformTolerances(tb, 0.01, 0)
	res, err := tol.Resolve(tb)
	if err != nil {
		t.Fatal(err)
	}
	// age range is 75-25=50, so 1% = 0.5
	if res[0].Value != 0.5 {
		t.Errorf("age tolerance = %g, want 0.5", res[0].Value)
	}
	if res[3].Value != 0 {
		t.Errorf("credit tolerance = %g, want 0", res[3].Value)
	}
	for _, r := range res {
		if r.Quantile {
			t.Error("Resolve left a quantile-form tolerance")
		}
	}
}

func TestToleranceResolveErrors(t *testing.T) {
	tb := paperTable(t)
	if _, err := (Tolerances{{Value: 1}}).Resolve(tb); err == nil {
		t.Error("Resolve accepted wrong-length vector")
	}
	bad := ZeroTolerances(tb)
	bad[0].Value = -1
	if _, err := bad.Resolve(tb); err == nil {
		t.Error("Resolve accepted negative tolerance")
	}
	bad2 := ZeroTolerances(tb)
	bad2[3].Value = 1.5
	if _, err := bad2.Resolve(tb); err == nil {
		t.Error("Resolve accepted categorical tolerance > 1")
	}
	bad3 := ZeroTolerances(tb)
	bad3[3].Quantile = true
	if _, err := bad3.Resolve(tb); err == nil {
		t.Error("Resolve accepted quantile tolerance on categorical attribute")
	}
}
