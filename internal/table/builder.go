package table

import (
	"fmt"
	"math"
)

// Builder constructs a Table row by row. It maintains the categorical
// dictionaries incrementally and validates cell kinds on append.
type Builder struct {
	schema Schema
	cols   []*Column
	dicts  []map[string]int32 // per categorical column: value -> code
	rows   int
}

// NewBuilder returns a Builder for the given schema.
func NewBuilder(schema Schema) (*Builder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	b := &Builder{schema: schema.Clone()}
	b.cols = make([]*Column, len(schema))
	b.dicts = make([]map[string]int32, len(schema))
	for i, a := range schema {
		b.cols[i] = &Column{Kind: a.Kind}
		if a.Kind == Categorical {
			b.dicts[i] = make(map[string]int32)
		}
	}
	return b, nil
}

// MustBuilder is like NewBuilder but panics on error; intended for tests
// and generators with known-good schemas.
func MustBuilder(schema Schema) *Builder {
	b, err := NewBuilder(schema)
	if err != nil {
		panic(err)
	}
	return b
}

// AppendRow appends one tuple. Each value must be a float64 for numeric
// attributes or a string for categorical attributes.
func (b *Builder) AppendRow(values ...any) error {
	if len(values) != len(b.schema) {
		return fmt.Errorf("table: row has %d values, schema has %d", len(values), len(b.schema))
	}
	// Validate first so a failed append leaves the builder unchanged.
	for i, v := range values {
		switch b.schema[i].Kind {
		case Numeric:
			f, ok := toFloat(v)
			if !ok {
				return fmt.Errorf("table: attribute %q wants numeric, got %T", b.schema[i].Name, v)
			}
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("table: attribute %q value is not finite", b.schema[i].Name)
			}
		case Categorical:
			if _, ok := v.(string); !ok {
				return fmt.Errorf("table: attribute %q wants string, got %T", b.schema[i].Name, v)
			}
		}
	}
	for i, v := range values {
		if b.schema[i].Kind == Numeric {
			f, _ := toFloat(v)
			// Numeric cells travel as 4-byte floats (the paper's record
			// layout); coercing here makes every later serialization
			// bit-exact, so error tolerances never leak rounding noise.
			b.cols[i].Floats = append(b.cols[i].Floats, float64(float32(f)))
			continue
		}
		s := v.(string)
		code, ok := b.dicts[i][s]
		if !ok {
			code = int32(len(b.cols[i].Dict))
			b.dicts[i][s] = code
			b.cols[i].Dict = append(b.cols[i].Dict, s)
		}
		b.cols[i].Codes = append(b.cols[i].Codes, code)
	}
	b.rows++
	return nil
}

// MustAppendRow is AppendRow that panics on error.
func (b *Builder) MustAppendRow(values ...any) {
	if err := b.AppendRow(values...); err != nil {
		panic(err)
	}
}

// NumRows reports how many rows have been appended so far.
func (b *Builder) NumRows() int { return b.rows }

// Build finalizes and returns the table. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Table, error) {
	t, err := New(b.schema, b.cols)
	if err != nil {
		return nil, err
	}
	b.cols = nil
	b.dicts = nil
	return t, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Table {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}
