package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a table from CSV with a header row. If schema is nil, it is
// inferred: a column whose every value parses as a float is Numeric,
// otherwise Categorical. If schema is non-nil its attribute names must match
// the header.
func ReadCSV(r io.Reader, schema Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	records := make([][]string, 0, 1024)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV: %w", err)
		}
		records = append(records, rec)
	}
	if schema == nil {
		schema = inferSchema(header, records)
	} else {
		if len(schema) != len(header) {
			return nil, fmt.Errorf("table: schema has %d attributes, CSV header has %d", len(schema), len(header))
		}
		for i, a := range schema {
			if a.Name != header[i] {
				return nil, fmt.Errorf("table: schema attribute %d is %q, CSV header says %q", i, a.Name, header[i])
			}
		}
	}
	b, err := NewBuilder(schema)
	if err != nil {
		return nil, err
	}
	row := make([]any, len(schema))
	for ri, rec := range records {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("table: CSV row %d has %d fields, want %d", ri+1, len(rec), len(schema))
		}
		for ci, field := range rec {
			if schema[ci].Kind == Numeric {
				f, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("table: CSV row %d column %q: %w", ri+1, schema[ci].Name, err)
				}
				row[ci] = f
			} else {
				row[ci] = field
			}
		}
		if err := b.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func inferSchema(header []string, records [][]string) Schema {
	schema := make(Schema, len(header))
	for ci, name := range header {
		kind := Numeric
		seen := false
		for _, rec := range records {
			if ci >= len(rec) {
				continue
			}
			seen = true
			if _, err := strconv.ParseFloat(rec[ci], 64); err != nil {
				kind = Categorical
				break
			}
		}
		if !seen {
			kind = Categorical
		}
		schema[ci] = Attribute{Name: name, Kind: kind}
	}
	return schema
}

// WriteCSV writes the table as CSV with a header row. Numeric values use
// the shortest representation that round-trips (strconv 'g', precision -1).
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return fmt.Errorf("table: writing CSV header: %w", err)
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c := 0; c < t.NumCols(); c++ {
			if t.Attr(c).Kind == Numeric {
				rec[c] = strconv.FormatFloat(t.Float(r, c), 'g', -1, 64)
			} else {
				rec[c] = t.CatString(r, c)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: writing CSV row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
