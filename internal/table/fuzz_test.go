package table

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary asserts the raw binary table reader never panics.
func FuzzReadBinary(f *testing.F) {
	b := MustBuilder(Schema{
		{Name: "n", Kind: Numeric},
		{Name: "c", Kind: Categorical},
	})
	b.MustAppendRow(1.5, "x")
	b.MustAppendRow(2.5, "y")
	tb := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tb); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(rawMagic))
	f.Add(valid[:len(valid)-2])
	mutated := append([]byte(nil), valid...)
	mutated[len(rawMagic)+1] ^= 0x7F
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadBinary(bytes.NewReader(data))
		if err == nil && tbl == nil {
			t.Error("ReadBinary returned nil table without error")
		}
	})
}

// FuzzReadCSV asserts the CSV reader never panics on arbitrary text.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("")
	f.Add("a\n")
	f.Add("a,a\n1,2\n")
	f.Add("x,y\n\"unclosed,3\n")
	f.Fuzz(func(t *testing.T, data string) {
		tbl, err := ReadCSV(strings.NewReader(data), nil)
		if err == nil && tbl == nil {
			t.Error("ReadCSV returned nil table without error")
		}
	})
}
