package table

import (
	"math/rand"
	"sort"
)

// Sample returns a uniform random sample of n rows (without replacement)
// using the given source of randomness. If n >= NumRows the whole table is
// returned (shared columns, no copy). The returned row indices are in
// increasing table order so samples preserve any on-disk ordering.
func (t *Table) Sample(n int, rng *rand.Rand) *Table {
	if n >= t.rows {
		return t
	}
	if n <= 0 {
		empty, err := t.SelectRows(nil)
		if err != nil {
			panic("table: empty sample failed: " + err.Error())
		}
		return empty
	}
	idx := reservoir(t.rows, n, rng)
	out, err := t.SelectRows(idx)
	if err != nil {
		panic("table: sample selection failed: " + err.Error())
	}
	return out
}

// SampleBytes returns a sample sized so its raw (uncompressed) binary
// footprint is approximately maxBytes, mirroring the paper's "50KB sample"
// parameterization. At least one row is always included for non-empty
// tables.
func (t *Table) SampleBytes(maxBytes int, rng *rand.Rand) *Table {
	if t.rows == 0 {
		return t
	}
	perRow := t.RawBytesPerRow()
	if perRow <= 0 {
		perRow = 1
	}
	n := maxBytes / perRow
	if n < 1 {
		n = 1
	}
	return t.Sample(n, rng)
}

// reservoir draws k distinct indices from [0, n) and returns them sorted.
func reservoir(n, k int, rng *rand.Rand) []int {
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	// Insertion of later indices scrambles order; restore increasing order.
	sort.Ints(res)
	return res
}
