package table

import "sort"

// LexSortedRows returns a permutation of row indices that orders the rows
// lexicographically by column (numeric columns by value, categorical by
// string value). The paper's gzip baseline sorts tables this way before
// compressing (§4.1), which substantially improves Lempel-Ziv matching.
func (t *Table) LexSortedRows() []int {
	idx := make([]int, t.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := idx[a], idx[b]
		for _, c := range t.cols {
			if c.Kind == Numeric {
				va, vb := c.Floats[ra], c.Floats[rb]
				if va != vb {
					return va < vb
				}
				continue
			}
			va, vb := c.Dict[c.Codes[ra]], c.Dict[c.Codes[rb]]
			if va != vb {
				return va < vb
			}
		}
		return false
	})
	return idx
}
