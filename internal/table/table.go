// Package table provides the columnar table substrate used throughout the
// SPARTAN semantic compressor: typed schemas, dictionary-coded categorical
// columns, numeric columns, sampling, and raw (uncompressed) serialization.
//
// A Table is immutable once built (use Builder to construct one); all
// compression components treat it as read-only, which makes concurrent model
// construction safe without locking.
package table

import (
	"fmt"
	"math"
	"sort"
)

// Kind distinguishes the two attribute classes of the paper (§2.1):
// categorical attributes have discrete, unordered domains; numeric
// attributes have ordered domains.
type Kind uint8

const (
	// Numeric attributes hold float64 values with ordered semantics.
	Numeric Kind = iota
	// Categorical attributes hold dictionary-coded discrete values.
	Categorical
)

// String returns "numeric" or "categorical".
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attribute describes a single column of a table.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes.
type Schema []Attribute

// Index returns the position of the attribute with the given name, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	names := make([]string, len(s))
	for i, a := range s {
		names[i] = a.Name
	}
	return names
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Validate checks that attribute names are non-empty and unique.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("table: schema has no attributes")
	}
	seen := make(map[string]bool, len(s))
	for i, a := range s {
		if a.Name == "" {
			return fmt.Errorf("table: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("table: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Column is a single typed column. Exactly one of Floats or Codes is
// populated, depending on the attribute kind. Categorical values are
// dictionary-coded: Codes[i] indexes into Dict.
type Column struct {
	Kind   Kind
	Floats []float64 // numeric values, len = #rows (Numeric only)
	Codes  []int32   // dictionary codes, len = #rows (Categorical only)
	Dict   []string  // categorical dictionary (Categorical only)
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.Kind == Numeric {
		return len(c.Floats)
	}
	return len(c.Codes)
}

// DomainSize returns the number of distinct values the column can take.
// For categorical columns this is the dictionary size; for numeric columns
// it is the number of distinct observed values.
func (c *Column) DomainSize() int {
	if c.Kind == Categorical {
		return len(c.Dict)
	}
	seen := make(map[float64]struct{}, 64)
	for _, v := range c.Floats {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// MinMax returns the minimum and maximum of a numeric column. It panics on
// categorical columns. Empty columns report (0, 0).
func (c *Column) MinMax() (lo, hi float64) {
	if c.Kind != Numeric {
		panic("table: MinMax on categorical column")
	}
	if len(c.Floats) == 0 {
		return 0, 0
	}
	lo, hi = c.Floats[0], c.Floats[0]
	for _, v := range c.Floats[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Range returns hi-lo for a numeric column.
func (c *Column) Range() float64 {
	lo, hi := c.MinMax()
	return hi - lo
}

// clone returns a deep copy of the column.
func (c *Column) clone() *Column {
	out := &Column{Kind: c.Kind}
	if c.Floats != nil {
		out.Floats = append([]float64(nil), c.Floats...)
	}
	if c.Codes != nil {
		out.Codes = append([]int32(nil), c.Codes...)
	}
	if c.Dict != nil {
		out.Dict = append([]string(nil), c.Dict...)
	}
	return out
}

// Table is an immutable, columnar, typed data table.
type Table struct {
	schema Schema
	cols   []*Column
	rows   int
}

// New constructs a table from a schema and matching columns. It validates
// that kinds agree and all columns have equal length.
func New(schema Schema, cols []*Column) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(cols) != len(schema) {
		return nil, fmt.Errorf("table: %d columns for %d attributes", len(cols), len(schema))
	}
	rows := -1
	for i, c := range cols {
		if c == nil {
			return nil, fmt.Errorf("table: column %d is nil", i)
		}
		if c.Kind != schema[i].Kind {
			return nil, fmt.Errorf("table: column %d kind %v != schema kind %v", i, c.Kind, schema[i].Kind)
		}
		if c.Kind == Categorical {
			for r, code := range c.Codes {
				if int(code) < 0 || int(code) >= len(c.Dict) {
					return nil, fmt.Errorf("table: column %d row %d code %d out of dictionary range %d", i, r, code, len(c.Dict))
				}
			}
		} else {
			for r, v := range c.Floats {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("table: column %d row %d is not finite", i, r)
				}
			}
		}
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return nil, fmt.Errorf("table: column %d has %d rows, expected %d", i, c.Len(), rows)
		}
	}
	if rows < 0 {
		rows = 0
	}
	return &Table{schema: schema.Clone(), cols: cols, rows: rows}, nil
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the number of attributes.
func (t *Table) NumCols() int { return len(t.cols) }

// Schema returns the table schema. Callers must not modify it.
func (t *Table) Schema() Schema { return t.schema }

// Attr returns the i-th attribute descriptor.
func (t *Table) Attr(i int) Attribute { return t.schema[i] }

// Col returns the i-th column. Callers must not modify it.
func (t *Table) Col(i int) *Column { return t.cols[i] }

// ColByName returns the column with the given attribute name, or nil.
func (t *Table) ColByName(name string) *Column {
	i := t.schema.Index(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// Float returns the numeric value at (row, col). Panics if the column is
// categorical.
func (t *Table) Float(row, col int) float64 {
	c := t.cols[col]
	if c.Kind != Numeric {
		panic(fmt.Sprintf("table: Float on categorical column %d", col))
	}
	return c.Floats[row]
}

// Code returns the dictionary code at (row, col). Panics if the column is
// numeric.
func (t *Table) Code(row, col int) int32 {
	c := t.cols[col]
	if c.Kind != Categorical {
		panic(fmt.Sprintf("table: Code on numeric column %d", col))
	}
	return c.Codes[row]
}

// CatString returns the string value of a categorical cell.
func (t *Table) CatString(row, col int) string {
	c := t.cols[col]
	return c.Dict[c.Codes[row]]
}

// Project returns a new table containing only the given column indices, in
// the given order. Column data is shared, not copied.
func (t *Table) Project(colIdx []int) (*Table, error) {
	schema := make(Schema, len(colIdx))
	cols := make([]*Column, len(colIdx))
	for i, ci := range colIdx {
		if ci < 0 || ci >= len(t.cols) {
			return nil, fmt.Errorf("table: project index %d out of range [0,%d)", ci, len(t.cols))
		}
		schema[i] = t.schema[ci]
		cols[i] = t.cols[ci]
	}
	return New(schema, cols)
}

// SelectRows returns a new table containing only the given rows, in order.
func (t *Table) SelectRows(rows []int) (*Table, error) {
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		nc := &Column{Kind: c.Kind, Dict: c.Dict}
		if c.Kind == Numeric {
			nc.Floats = make([]float64, len(rows))
			for j, r := range rows {
				if r < 0 || r >= t.rows {
					return nil, fmt.Errorf("table: row index %d out of range [0,%d)", r, t.rows)
				}
				nc.Floats[j] = c.Floats[r]
			}
		} else {
			nc.Codes = make([]int32, len(rows))
			for j, r := range rows {
				if r < 0 || r >= t.rows {
					return nil, fmt.Errorf("table: row index %d out of range [0,%d)", r, t.rows)
				}
				nc.Codes[j] = c.Codes[r]
			}
		}
		cols[i] = nc
	}
	return New(t.schema.Clone(), cols)
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.clone()
	}
	out, err := New(t.schema.Clone(), cols)
	if err != nil {
		panic("table: clone of valid table failed: " + err.Error())
	}
	return out
}

// Equal reports whether two tables have identical schemas and cell values.
// Categorical cells compare by string value, so differing dictionary
// orderings do not affect equality.
func Equal(a, b *Table) bool {
	if a.rows != b.rows || len(a.cols) != len(b.cols) {
		return false
	}
	for i := range a.schema {
		if a.schema[i] != b.schema[i] {
			return false
		}
	}
	for ci := range a.cols {
		ca, cb := a.cols[ci], b.cols[ci]
		if ca.Kind == Numeric {
			for r := 0; r < a.rows; r++ {
				if ca.Floats[r] != cb.Floats[r] {
					return false
				}
			}
		} else {
			for r := 0; r < a.rows; r++ {
				if ca.Dict[ca.Codes[r]] != cb.Dict[cb.Codes[r]] {
					return false
				}
			}
		}
	}
	return true
}

// MaxAbsDiff returns, for each numeric column, the maximum absolute
// difference between corresponding cells of a and b, and for each
// categorical column the fraction of rows whose values differ. The two
// tables must have identical schemas and row counts.
func MaxAbsDiff(a, b *Table) ([]float64, error) {
	if a.rows != b.rows || len(a.cols) != len(b.cols) {
		return nil, fmt.Errorf("table: shape mismatch %dx%d vs %dx%d", a.rows, len(a.cols), b.rows, len(b.cols))
	}
	out := make([]float64, len(a.cols))
	for ci := range a.cols {
		ca, cb := a.cols[ci], b.cols[ci]
		if ca.Kind != cb.Kind {
			return nil, fmt.Errorf("table: column %d kind mismatch", ci)
		}
		if ca.Kind == Numeric {
			m := 0.0
			for r := 0; r < a.rows; r++ {
				d := math.Abs(ca.Floats[r] - cb.Floats[r])
				if d > m {
					m = d
				}
			}
			out[ci] = m
		} else {
			diff := 0
			for r := 0; r < a.rows; r++ {
				if ca.Dict[ca.Codes[r]] != cb.Dict[cb.Codes[r]] {
					diff++
				}
			}
			if a.rows > 0 {
				out[ci] = float64(diff) / float64(a.rows)
			}
		}
	}
	return out, nil
}

// SortedDistinctFloats returns the sorted distinct values of a numeric
// column.
func (c *Column) SortedDistinctFloats() []float64 {
	if c.Kind != Numeric {
		panic("table: SortedDistinctFloats on categorical column")
	}
	seen := make(map[float64]struct{}, 64)
	for _, v := range c.Floats {
		seen[v] = struct{}{}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
