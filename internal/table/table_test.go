package table

import (
	"math"
	"strings"
	"testing"
)

func creditSchema() Schema {
	return Schema{
		{Name: "age", Kind: Numeric},
		{Name: "salary", Kind: Numeric},
		{Name: "assets", Kind: Numeric},
		{Name: "credit", Kind: Categorical},
	}
}

// paperTable reproduces the 8-tuple table of Figure 1(a) in the paper.
func paperTable(t *testing.T) *Table {
	t.Helper()
	b := MustBuilder(creditSchema())
	rows := [][]any{
		{30.0, 90000.0, 200000.0, "good"},
		{50.0, 110000.0, 250000.0, "good"},
		{70.0, 35000.0, 125000.0, "poor"},
		{75.0, 15000.0, 100000.0, "poor"},
		{25.0, 50000.0, 75000.0, "good"},
		{35.0, 76000.0, 75000.0, "good"},
		{45.0, 100000.0, 175000.0, "poor"},
		{55.0, 80000.0, 150000.0, "good"},
	}
	for _, r := range rows {
		b.MustAppendRow(r...)
	}
	return b.MustBuild()
}

func TestBuilderAndAccessors(t *testing.T) {
	tb := paperTable(t)
	if got, want := tb.NumRows(), 8; got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}
	if got, want := tb.NumCols(), 4; got != want {
		t.Fatalf("NumCols = %d, want %d", got, want)
	}
	if got := tb.Float(0, 1); got != 90000 {
		t.Errorf("Float(0,1) = %g, want 90000", got)
	}
	if got := tb.CatString(2, 3); got != "poor" {
		t.Errorf("CatString(2,3) = %q, want poor", got)
	}
	if got := tb.Col(3).DomainSize(); got != 2 {
		t.Errorf("credit domain size = %d, want 2", got)
	}
}

func TestBuilderRejectsWrongTypes(t *testing.T) {
	b := MustBuilder(creditSchema())
	if err := b.AppendRow("x", 1.0, 2.0, "good"); err == nil {
		t.Error("AppendRow accepted string for numeric attribute")
	}
	if err := b.AppendRow(1.0, 2.0, 3.0, 4.0); err == nil {
		t.Error("AppendRow accepted float for categorical attribute")
	}
	if err := b.AppendRow(1.0, 2.0, 3.0); err == nil {
		t.Error("AppendRow accepted short row")
	}
	if err := b.AppendRow(math.NaN(), 2.0, 3.0, "good"); err == nil {
		t.Error("AppendRow accepted NaN")
	}
	if b.NumRows() != 0 {
		t.Errorf("failed appends left %d rows in builder", b.NumRows())
	}
}

func TestBuilderAcceptsIntForNumeric(t *testing.T) {
	b := MustBuilder(Schema{{Name: "x", Kind: Numeric}})
	if err := b.AppendRow(7); err != nil {
		t.Fatalf("AppendRow(int) failed: %v", err)
	}
	tb := b.MustBuild()
	if tb.Float(0, 0) != 7 {
		t.Errorf("Float = %g, want 7", tb.Float(0, 0))
	}
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name   string
		schema Schema
		ok     bool
	}{
		{"empty", Schema{}, false},
		{"unnamed", Schema{{Name: "", Kind: Numeric}}, false},
		{"dup", Schema{{Name: "a", Kind: Numeric}, {Name: "a", Kind: Categorical}}, false},
		{"ok", Schema{{Name: "a", Kind: Numeric}, {Name: "b", Kind: Categorical}}, true},
	}
	for _, c := range cases {
		err := c.schema.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() err = %v, ok = %v", c.name, err, c.ok)
		}
	}
}

func TestProjectSharesColumns(t *testing.T) {
	tb := paperTable(t)
	p, err := tb.Project([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Attr(0).Name != "salary" || p.Attr(1).Name != "age" {
		t.Fatalf("project schema = %v", p.Schema().Names())
	}
	if p.Col(0) != tb.Col(1) {
		t.Error("Project copied columns; expected sharing")
	}
	if _, err := tb.Project([]int{99}); err == nil {
		t.Error("Project accepted out-of-range index")
	}
}

func TestSelectRows(t *testing.T) {
	tb := paperTable(t)
	s, err := tb.SelectRows([]int{7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", s.NumRows())
	}
	if s.Float(0, 0) != 55 || s.Float(1, 0) != 30 {
		t.Errorf("selected ages = %g, %g; want 55, 30", s.Float(0, 0), s.Float(1, 0))
	}
	if _, err := tb.SelectRows([]int{-1}); err == nil {
		t.Error("SelectRows accepted negative index")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := paperTable(t)
	b := a.Clone()
	if !Equal(a, b) {
		t.Fatal("clone not Equal to original")
	}
	b.Col(0).Floats[3] = 99
	if Equal(a, b) {
		t.Fatal("Equal missed a mutated cell")
	}
	if a.Col(0).Floats[3] == 99 {
		t.Fatal("Clone shares column storage")
	}
}

func TestEqualIgnoresDictOrder(t *testing.T) {
	s := Schema{{Name: "c", Kind: Categorical}}
	b1 := MustBuilder(s)
	b1.MustAppendRow("x")
	b1.MustAppendRow("y")
	t1 := b1.MustBuild()
	b2 := MustBuilder(s)
	b2.MustAppendRow("y") // dictionary order y,x
	b2.MustAppendRow("x")
	t2raw := b2.MustBuild()
	t2, err := t2raw.SelectRows([]int{1, 0}) // values x,y again
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(t1, t2) {
		t.Error("Equal is sensitive to dictionary ordering")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := paperTable(t)
	b := a.Clone()
	b.Col(1).Floats[0] += 4000
	b.Col(3).Codes[0] = 1 - b.Col(3).Codes[0]
	d, err := MaxAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d[1] != 4000 {
		t.Errorf("numeric diff = %g, want 4000", d[1])
	}
	if math.Abs(d[3]-0.125) > 1e-12 {
		t.Errorf("categorical diff = %g, want 0.125", d[3])
	}
}

func TestMinMaxRange(t *testing.T) {
	tb := paperTable(t)
	lo, hi := tb.Col(1).MinMax()
	if lo != 15000 || hi != 110000 {
		t.Errorf("salary MinMax = %g, %g; want 15000, 110000", lo, hi)
	}
	if r := tb.Col(1).Range(); r != 95000 {
		t.Errorf("salary Range = %g, want 95000", r)
	}
}

func TestSortedDistinctFloats(t *testing.T) {
	b := MustBuilder(Schema{{Name: "x", Kind: Numeric}})
	for _, v := range []float64{3, 1, 3, 2, 1} {
		b.MustAppendRow(v)
	}
	tb := b.MustBuild()
	got := tb.Col(0).SortedDistinctFloats()
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("distinct = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct = %v, want %v", got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	s := Schema{{Name: "a", Kind: Numeric}, {Name: "b", Kind: Categorical}}
	numCol := &Column{Kind: Numeric, Floats: []float64{1, 2}}
	catCol := &Column{Kind: Categorical, Codes: []int32{0, 1}, Dict: []string{"x", "y"}}

	if _, err := New(s, []*Column{numCol}); err == nil {
		t.Error("New accepted wrong column count")
	}
	if _, err := New(s, []*Column{catCol, numCol}); err == nil {
		t.Error("New accepted kind mismatch")
	}
	short := &Column{Kind: Categorical, Codes: []int32{0}, Dict: []string{"x"}}
	if _, err := New(s, []*Column{numCol, short}); err == nil {
		t.Error("New accepted ragged columns")
	}
	bad := &Column{Kind: Categorical, Codes: []int32{0, 5}, Dict: []string{"x", "y"}}
	if _, err := New(s, []*Column{numCol, bad}); err == nil {
		t.Error("New accepted out-of-dictionary code")
	}
	if _, err := New(s, []*Column{numCol, catCol}); err != nil {
		t.Errorf("New rejected valid table: %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := paperTable(t)
	var sb strings.Builder
	if err := WriteCSV(&sb, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tb, got) {
		t.Error("CSV round trip changed table")
	}
	// With an explicit matching schema.
	got2, err := ReadCSV(strings.NewReader(sb.String()), tb.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tb, got2) {
		t.Error("CSV round trip with explicit schema changed table")
	}
}

func TestCSVSchemaInference(t *testing.T) {
	in := "num,mixed\n1.5,2\n2,x\n"
	tb, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Attr(0).Kind != Numeric {
		t.Error("all-float column inferred categorical")
	}
	if tb.Attr(1).Kind != Categorical {
		t.Error("mixed column inferred numeric")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), nil); err == nil {
		t.Error("ReadCSV accepted empty input")
	}
	wrong := Schema{{Name: "zzz", Kind: Numeric}}
	if _, err := ReadCSV(strings.NewReader("a\n1\n"), wrong); err == nil {
		t.Error("ReadCSV accepted mismatched schema names")
	}
	badNum := Schema{{Name: "a", Kind: Numeric}}
	if _, err := ReadCSV(strings.NewReader("a\nxyz\n"), badNum); err == nil {
		t.Error("ReadCSV accepted unparsable numeric cell")
	}
}
