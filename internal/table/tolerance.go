package table

import (
	"fmt"
)

// Tolerance is the per-attribute acceptable information loss (the eᵢ of the
// paper, §2.1). For numeric attributes it bounds the absolute difference
// between original and reconstructed values; for categorical attributes it
// bounds the probability that a reconstructed value differs from the
// original.
type Tolerance struct {
	// Value is the error bound: an absolute difference for numeric
	// attributes, a probability in [0, 1] for categorical attributes.
	Value float64
	// Quantile, if true, marks a numeric tolerance expressed as a fraction
	// of the attribute's observed value range rather than an absolute
	// difference (the paper's percent-of-range parameterization in §4.1).
	// Resolve converts it to an absolute bound.
	Quantile bool
	// PerClass optionally overrides the mismatch probability for
	// individual classes of a categorical attribute (the paper's §2.1
	// "more local" categorical bounds): for every class value c, at most
	// PerClass[c] of the rows whose original value is c may decompress to
	// a different value. Classes not listed use Value.
	PerClass map[string]float64
}

// Tolerances maps each attribute (by schema position) to its tolerance.
type Tolerances []Tolerance

// UniformTolerances builds a tolerance vector for the given table: every
// numeric attribute gets numericFrac of its value range, every categorical
// attribute gets catProb. This matches the experimental setup in §4.1 of
// the paper (e.g. 1% numeric tolerance, 0 categorical tolerance).
func UniformTolerances(t *Table, numericFrac, catProb float64) Tolerances {
	return UniformTolerancesSchema(t.Schema(), numericFrac, catProb)
}

// UniformTolerancesSchema is UniformTolerances from a schema alone, for
// callers that know the attribute kinds without materializing rows (e.g.
// querying an archive footer before decoding any segment).
func UniformTolerancesSchema(s Schema, numericFrac, catProb float64) Tolerances {
	tol := make(Tolerances, len(s))
	for i := range s {
		if s[i].Kind == Numeric {
			tol[i] = Tolerance{Value: numericFrac, Quantile: true}
		} else {
			tol[i] = Tolerance{Value: catProb}
		}
	}
	return tol
}

// ZeroTolerances builds an all-zero (lossless) tolerance vector.
func ZeroTolerances(t *Table) Tolerances {
	return make(Tolerances, t.NumCols())
}

// ClassBudgets converts a categorical tolerance into per-code mismatch
// probabilities for the given dictionary: PerClass overrides where
// present, Value elsewhere. A nil map is returned when no per-class
// overrides exist (callers then use the scalar Value).
func (e Tolerance) ClassBudgets(dict []string) map[int32]float64 {
	if len(e.PerClass) == 0 {
		return nil
	}
	out := make(map[int32]float64, len(dict))
	for code, name := range dict {
		p := e.Value
		if v, ok := e.PerClass[name]; ok {
			p = v
		}
		out[int32(code)] = p
	}
	return out
}

// Resolve converts quantile-form numeric tolerances into absolute bounds
// using the observed column ranges of t, and validates the vector. The
// returned slice has Quantile=false everywhere.
func (tol Tolerances) Resolve(t *Table) (Tolerances, error) {
	if len(tol) != t.NumCols() {
		return nil, fmt.Errorf("table: %d tolerances for %d attributes", len(tol), t.NumCols())
	}
	ranges := make([]float64, t.NumCols())
	for i := range ranges {
		if t.Attr(i).Kind == Numeric {
			ranges[i] = t.Col(i).Range()
		}
	}
	return tol.ResolveRanges(t.Schema(), ranges)
}

// ResolveRanges is Resolve against explicit per-attribute value ranges
// instead of an observed table, for callers that know the ranges without
// materializing rows (e.g. from an archive footer's zone maps, where
// resolving against a pruned subset's narrower range would understate
// the error bound). ranges[i] is the value range (hi − lo) of numeric
// attribute i and is ignored for categorical attributes.
func (tol Tolerances) ResolveRanges(schema Schema, ranges []float64) (Tolerances, error) {
	if len(tol) != len(schema) {
		return nil, fmt.Errorf("table: %d tolerances for %d attributes", len(tol), len(schema))
	}
	if len(ranges) != len(schema) {
		return nil, fmt.Errorf("table: %d ranges for %d attributes", len(ranges), len(schema))
	}
	out := make(Tolerances, len(tol))
	for i, e := range tol {
		attr := schema[i]
		if e.Value < 0 {
			return nil, fmt.Errorf("table: attribute %q has negative tolerance %g", attr.Name, e.Value)
		}
		switch attr.Kind {
		case Numeric:
			if e.PerClass != nil {
				return nil, fmt.Errorf("table: attribute %q is numeric; per-class tolerances apply to categorical attributes", attr.Name)
			}
			v := e.Value
			if e.Quantile {
				v *= ranges[i]
			}
			out[i] = Tolerance{Value: v}
		case Categorical:
			if e.Quantile {
				return nil, fmt.Errorf("table: attribute %q is categorical; quantile tolerances apply to numeric attributes", attr.Name)
			}
			if e.Value > 1 {
				return nil, fmt.Errorf("table: attribute %q has categorical tolerance %g > 1", attr.Name, e.Value)
			}
			for class, p := range e.PerClass {
				if p < 0 || p > 1 {
					return nil, fmt.Errorf("table: attribute %q class %q has tolerance %g outside [0, 1]", attr.Name, class, p)
				}
			}
			out[i] = e
		}
	}
	return out, nil
}
