// Package wmis solves Weighted Maximum Independent Set instances.
//
// SPARTAN's CaRT-selection problem reduces to WMIS on the "predicted-by"
// benefit graph (Theorem 3.1 of the paper). The paper plugged in the
// closed-source QUALEX package and notes it "always found the optimal
// solution" on its instances (whose node count equals the number of table
// attributes). This package substitutes:
//
//   - an exact branch-and-bound solver used automatically for graphs up to
//     ExactLimit nodes — the regime of every instance SPARTAN generates —
//     reproducing QUALEX-level optimality; and
//   - the GWMIN and GWMIN2 greedy heuristics of Sakai, Togasaki and
//     Yamazaki (with guaranteed degree-bounded approximation factors, the
//     family of bounds the paper cites via Halldórsson) plus 2-swap local
//     search, used beyond the exact limit.
package wmis

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an undirected node-weighted graph on nodes 0..n-1. Weights may
// be negative; negative-weight nodes are never profitable to include and
// all solvers exclude them up front.
type Graph struct {
	weights []float64
	adj     []map[int]bool
}

// NewGraph creates a graph with n isolated nodes of weight 0.
func NewGraph(n int) *Graph {
	g := &Graph{weights: make([]float64, n), adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.weights) }

// SetWeight assigns the weight of node v.
func (g *Graph) SetWeight(v int, w float64) { g.weights[v] = w }

// Weight returns the weight of node v.
func (g *Graph) Weight(v int) float64 { return g.weights[v] }

// AddEdge inserts the undirected edge {u, v}; duplicate insertions are
// no-ops, self-loops are rejected.
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("wmis: self loop at %d", u)
	}
	if u < 0 || u >= len(g.weights) || v < 0 || v >= len(g.weights) {
		return fmt.Errorf("wmis: edge (%d,%d) out of range", u, v)
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns a sorted copy of v's neighbor set.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// IsIndependent reports whether the node set is pairwise non-adjacent.
func (g *Graph) IsIndependent(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.adj[set[i]][set[j]] {
				return false
			}
		}
	}
	return true
}

// SetWeightSum returns the total weight of the node set.
func (g *Graph) SetWeightSum(set []int) float64 {
	s := 0.0
	for _, v := range set {
		s += g.weights[v]
	}
	return s
}

// ExactLimit is the node-count ceiling under which Solve uses the exact
// branch-and-bound solver. SPARTAN's instances have one node per table
// attribute, so real workloads (≤ a few hundred attributes would still be
// fine; the paper's largest has 54) always take the exact path.
const ExactLimit = 40

// Solve returns a maximum-weight independent set: exact for graphs with at
// most ExactLimit positive-weight nodes, best-of-heuristics (GWMIN, GWMIN2,
// each refined by 2-swap local search) otherwise. The returned set is
// sorted; only strictly-positive-weight nodes appear in it.
func Solve(g *Graph) []int {
	positive := 0
	for _, w := range g.weights {
		if w > 0 {
			positive++
		}
	}
	if positive == 0 {
		return nil
	}
	if positive <= ExactLimit {
		return SolveExact(g)
	}
	a := LocalSearch(g, GWMin(g))
	b := LocalSearch(g, GWMin2(g))
	if g.SetWeightSum(b) > g.SetWeightSum(a) {
		a = b
	}
	sort.Ints(a)
	return a
}

// SolveExact finds a provably maximum-weight independent set by
// branch-and-bound over the positive-weight nodes. Nodes are explored in
// descending weight order; the bound is the sum of weights of remaining
// candidates.
func SolveExact(g *Graph) []int {
	var nodes []int
	for v, w := range g.weights {
		if w > 0 {
			nodes = append(nodes, v)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if g.weights[nodes[i]] != g.weights[nodes[j]] {
			return g.weights[nodes[i]] > g.weights[nodes[j]]
		}
		return nodes[i] < nodes[j]
	})
	// Suffix sums of weights for the bound.
	suffix := make([]float64, len(nodes)+1)
	for i := len(nodes) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + g.weights[nodes[i]]
	}
	best := []int{}
	bestW := 0.0
	cur := make([]int, 0, len(nodes))
	blocked := make([]int, g.NumNodes()) // #selected neighbors of each node

	var rec func(i int, curW float64)
	rec = func(i int, curW float64) {
		if curW > bestW {
			bestW = curW
			best = append(best[:0], cur...)
		}
		if i >= len(nodes) || curW+suffix[i] <= bestW {
			return
		}
		v := nodes[i]
		if blocked[v] == 0 {
			// Branch 1: include v.
			cur = append(cur, v)
			for w := range g.adj[v] {
				blocked[w]++
			}
			rec(i+1, curW+g.weights[v])
			for w := range g.adj[v] {
				blocked[w]--
			}
			cur = cur[:len(cur)-1]
		}
		// Branch 2: exclude v.
		rec(i+1, curW)
	}
	rec(0, 0)
	sort.Ints(best)
	return best
}

// GWMin implements the GWMIN heuristic: repeatedly select the node
// maximizing weight/(degree+1) in the remaining graph, then delete it and
// its neighbors. Guarantees a Σ w(v)/(d(v)+1) lower bound.
func GWMin(g *Graph) []int {
	return greedy(g, func(w float64, deg int) float64 {
		return w / float64(deg+1)
	})
}

// GWMin2 implements the GWMIN2 heuristic: selection key is
// weight / (weight + Σ neighbor weights); equivalent behaviour is obtained
// here by key = w(v) / (w(v) + W_N(v)).
func GWMin2(g *Graph) []int {
	alive := make([]bool, g.NumNodes())
	for v, w := range g.weights {
		alive[v] = w > 0
	}
	var out []int
	for {
		bestV, bestKey := -1, math.Inf(-1)
		for v := range g.weights {
			if !alive[v] {
				continue
			}
			nw := 0.0
			for u := range g.adj[v] {
				if alive[u] {
					nw += math.Max(g.weights[u], 0)
				}
			}
			key := g.weights[v] / (g.weights[v] + nw)
			if nw == 0 {
				key = math.Inf(1) // isolated positive node: always take
			}
			if key > bestKey || (key == bestKey && (bestV == -1 || v < bestV)) {
				bestKey, bestV = key, v
			}
		}
		if bestV == -1 {
			break
		}
		out = append(out, bestV)
		alive[bestV] = false
		for u := range g.adj[bestV] {
			alive[u] = false
		}
	}
	sort.Ints(out)
	return out
}

func greedy(g *Graph, key func(w float64, deg int) float64) []int {
	alive := make([]bool, g.NumNodes())
	for v, w := range g.weights {
		alive[v] = w > 0
	}
	var out []int
	for {
		bestV, bestKey := -1, math.Inf(-1)
		for v := range g.weights {
			if !alive[v] {
				continue
			}
			deg := 0
			for u := range g.adj[v] {
				if alive[u] {
					deg++
				}
			}
			k := key(g.weights[v], deg)
			if k > bestKey || (k == bestKey && (bestV == -1 || v < bestV)) {
				bestKey, bestV = k, v
			}
		}
		if bestV == -1 {
			break
		}
		out = append(out, bestV)
		alive[bestV] = false
		for u := range g.adj[bestV] {
			alive[u] = false
		}
	}
	sort.Ints(out)
	return out
}

// LocalSearch improves an independent set with (1,2)-swaps: repeatedly try
// removing one member and inserting up to two non-adjacent replacements
// with higher total weight, until a fixed point. The result remains
// independent and never gets lighter.
func LocalSearch(g *Graph, set []int) []int {
	in := make([]bool, g.NumNodes())
	for _, v := range set {
		in[v] = true
	}
	cur := append([]int(nil), set...)
	improved := true
	for improved {
		improved = false
		// Insertion of any free positive node (0-swap).
		for v, w := range g.weights {
			if in[v] || w <= 0 {
				continue
			}
			if freeOf(g, in, v, -1) {
				in[v] = true
				cur = append(cur, v)
				improved = true
			}
		}
		// (1,2)-swaps.
		for _, rem := range append([]int(nil), cur...) {
			if !in[rem] {
				continue
			}
			in[rem] = false
			bestGain := 0.0
			var bestAdd []int
			// Candidate replacements: restrict to neighbors of rem plus
			// any currently free node (others were already inserted).
			cands := candidateList(g, in, rem)
			for i := 0; i < len(cands); i++ {
				a := cands[i]
				ga := g.weights[a] - g.weights[rem]
				if ga > bestGain {
					bestGain = ga
					bestAdd = []int{a}
				}
				for j := i + 1; j < len(cands); j++ {
					b := cands[j]
					if g.adj[a][b] {
						continue
					}
					gab := g.weights[a] + g.weights[b] - g.weights[rem]
					if gab > bestGain {
						bestGain = gab
						bestAdd = []int{a, b}
					}
				}
			}
			if bestGain > 1e-12 {
				cur = removeFrom(cur, rem)
				for _, a := range bestAdd {
					in[a] = true
					cur = append(cur, a)
				}
				improved = true
			} else {
				in[rem] = true
			}
		}
	}
	sort.Ints(cur)
	return cur
}

// freeOf reports whether v has no selected neighbor (ignoring `ignore`).
func freeOf(g *Graph, in []bool, v, ignore int) bool {
	for u := range g.adj[v] {
		if u != ignore && in[u] {
			return false
		}
	}
	return true
}

// candidateList returns positive-weight nodes not in the set that would be
// free if rem stays removed.
func candidateList(g *Graph, in []bool, rem int) []int {
	var out []int
	for v, w := range g.weights {
		if w <= 0 || in[v] || v == rem {
			continue
		}
		if freeOf(g, in, v, rem) {
			out = append(out, v)
		}
	}
	return out
}

func removeFrom(s []int, x int) []int {
	out := s[:0]
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}
