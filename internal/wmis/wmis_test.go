package wmis

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce enumerates all subsets (n <= ~20) and returns the best
// independent-set weight.
func bruteForce(g *Graph) float64 {
	n := g.NumNodes()
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		if !g.IsIndependent(set) {
			continue
		}
		if w := g.SetWeightSum(set); w > best {
			best = w
		}
	}
	return best
}

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetWeight(v, float64(rng.Intn(21)-5)) // weights in [-5, 15]
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil { // duplicate is a no-op
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("AddEdge accepted a self loop")
	}
	if err := g.AddEdge(0, 7); err == nil {
		t.Error("AddEdge accepted out-of-range node")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Error("bad degrees")
	}
	if ns := g.Neighbors(0); len(ns) != 1 || ns[0] != 1 {
		t.Errorf("Neighbors(0) = %v", ns)
	}
	if g.IsIndependent([]int{0, 1}) {
		t.Error("adjacent pair reported independent")
	}
	if !g.IsIndependent([]int{0, 2}) {
		t.Error("non-adjacent pair reported dependent")
	}
}

func TestSolveExactMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 10, 0.3)
		got := g.SetWeightSum(SolveExact(g))
		want := bruteForce(g)
		if got != want {
			t.Errorf("seed %d: SolveExact weight = %g, brute force = %g", seed, got, want)
		}
	}
}

func TestSolveExactExcludesNegative(t *testing.T) {
	g := NewGraph(3)
	g.SetWeight(0, -1)
	g.SetWeight(1, 5)
	g.SetWeight(2, 0)
	set := SolveExact(g)
	if len(set) != 1 || set[0] != 1 {
		t.Errorf("set = %v, want [1]", set)
	}
}

func TestSolvePathGraph(t *testing.T) {
	// Path 0-1-2-3 with weights 1, 10, 10, 1: optimum is {1, 3} or {0, 2}
	// with weight 11. A naive greedy-by-weight picks {1, 3} = 11 too; make
	// middle pair heavier to force the interesting case.
	g := NewGraph(4)
	for v, w := range []float64{1, 10, 10, 1} {
		g.SetWeight(v, w)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	set := Solve(g)
	if got := g.SetWeightSum(set); got != 11 {
		t.Errorf("Solve weight = %g, want 11 (set %v)", got, set)
	}
}

func TestHeuristicsReturnIndependentSets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 25, 0.2)
		for _, set := range [][]int{GWMin(g), GWMin2(g), Solve(g)} {
			if !g.IsIndependent(set) {
				return false
			}
			for _, v := range set {
				if g.Weight(v) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20, 0.25)
		init := GWMin(g)
		improved := LocalSearch(g, init)
		return g.IsIndependent(improved) &&
			g.SetWeightSum(improved) >= g.SetWeightSum(init)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchFindsSwap(t *testing.T) {
	// Star: center weight 5 adjacent to three leaves of weight 3 each.
	// GWMIN2 might pick the center; local search must reach the leaves
	// (weight 9).
	g := NewGraph(4)
	g.SetWeight(0, 5)
	for v := 1; v <= 3; v++ {
		g.SetWeight(v, 3)
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	got := LocalSearch(g, []int{0})
	if w := g.SetWeightSum(got); w != 9 {
		t.Errorf("LocalSearch weight = %g, want 9 (set %v)", w, got)
	}
}

func TestSolveEmptyAndAllNegative(t *testing.T) {
	g := NewGraph(0)
	if set := Solve(g); len(set) != 0 {
		t.Errorf("Solve(empty) = %v", set)
	}
	g2 := NewGraph(3)
	for v := 0; v < 3; v++ {
		g2.SetWeight(v, -1)
	}
	if set := Solve(g2); len(set) != 0 {
		t.Errorf("Solve(all negative) = %v", set)
	}
}

func TestSolveLargeGraphUsesHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, ExactLimit+20, 0.1)
	set := Solve(g)
	if !g.IsIndependent(set) {
		t.Error("heuristic path returned dependent set")
	}
	if g.SetWeightSum(set) <= 0 {
		t.Error("heuristic path returned non-positive weight on a graph with positive nodes")
	}
}

func TestSolveOptimalOnSmallRandomGraphs(t *testing.T) {
	// Solve must be exact below ExactLimit.
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12, 0.35)
		if got, want := g.SetWeightSum(Solve(g)), bruteForce(g); got != want {
			t.Errorf("seed %d: Solve = %g, optimum = %g", seed, got, want)
		}
	}
}
