package spartan

import (
	"testing"

	"repro/internal/datagen"
)

// TestPerClassCategoricalTolerance exercises the paper's §2.1 extension:
// per-class mismatch probabilities. The "fulltime" class of employment is
// pinned exact while others may err up to 20%.
func TestPerClassCategoricalTolerance(t *testing.T) {
	tb := datagen.Census(4000, 31)
	tol := UniformTolerances(tb, 0.02, 0.2)
	empIdx := tb.Schema().Index("employment")
	tol[empIdx].PerClass = map[string]float64{"fulltime": 0}

	data, _, err := CompressBytes(tb, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tb, back, tol); err != nil {
		t.Fatal(err)
	}
	// Spot-check the pinned class directly.
	oc, rc := tb.Col(empIdx), back.Col(empIdx)
	for r := 0; r < tb.NumRows(); r++ {
		if oc.Dict[oc.Codes[r]] == "fulltime" && rc.Dict[rc.Codes[r]] != "fulltime" {
			t.Fatalf("row %d: pinned class fulltime decompressed as %q",
				r, rc.Dict[rc.Codes[r]])
		}
	}
}

func TestPerClassValidation(t *testing.T) {
	tb := datagen.Census(200, 32)
	tol := UniformTolerances(tb, 0.02, 0.1)

	// Per-class override outside [0,1].
	bad := append(Tolerances(nil), tol...)
	empIdx := tb.Schema().Index("employment")
	bad[empIdx].PerClass = map[string]float64{"fulltime": 1.5}
	if _, _, err := CompressBytes(tb, Options{Tolerances: bad}); err == nil {
		t.Error("accepted per-class tolerance > 1")
	}

	// Per-class override on a numeric attribute.
	bad2 := append(Tolerances(nil), tol...)
	bad2[tb.Schema().Index("age")].PerClass = map[string]float64{"x": 0.5}
	if _, _, err := CompressBytes(tb, Options{Tolerances: bad2}); err == nil {
		t.Error("accepted per-class tolerance on numeric attribute")
	}
}

func TestVerifyPerClassCatchesViolations(t *testing.T) {
	tb := datagen.Census(500, 33)
	empIdx := tb.Schema().Index("employment")
	tol := UniformTolerances(tb, 0.02, 0.5)
	tol[empIdx].PerClass = map[string]float64{"fulltime": 0}

	mutated := tb.Clone()
	// Flip one fulltime row to a different code.
	col := mutated.Col(empIdx)
	target := int32(-1)
	for c, name := range col.Dict {
		if name == "fulltime" {
			target = int32(c)
		}
	}
	other := (target + 1) % int32(len(col.Dict))
	for r, c := range col.Codes {
		if c == target {
			col.Codes[r] = other
			break
		}
	}
	if err := Verify(tb, mutated, tol); err == nil {
		t.Error("Verify missed a per-class violation")
	}
}
