package spartan

import (
	"repro/internal/query"
	"repro/internal/table"
)

// Approximate querying (paper §1): aggregates over decompressed tables
// with intervals guaranteed to contain the answer the original table
// would give. See the query package documentation for the bound
// semantics; these aliases make the engine reachable from the public API.
type (
	// Query is one aggregate query: Agg(Column) WHERE Where GROUP BY
	// GroupBy.
	Query = query.Query
	// QueryResult carries one Group per group-by value.
	QueryResult = query.Result
	// QueryGroup is a point estimate plus guaranteed bounds [Lo, Hi].
	QueryGroup = query.Group
	// Predicate filters rows under tolerance-aware three-valued logic.
	Predicate = query.Predicate
	// AggKind selects the aggregate (Count, Sum, Avg, Min, Max).
	AggKind = query.AggKind
	// CmpOp is a numeric comparison operator.
	CmpOp = query.CmpOp
)

// Aggregates.
const (
	Count = query.Count
	Sum   = query.Sum
	Avg   = query.Avg
	Min   = query.Min
	Max   = query.Max
)

// Comparison operators.
const (
	Lt = query.Lt
	Le = query.Le
	Gt = query.Gt
	Ge = query.Ge
	Eq = query.Eq
	Ne = query.Ne
)

// NumCmp compares a numeric attribute against a constant.
func NumCmp(column string, op CmpOp, value float64) Predicate {
	return query.NumCmp(column, op, value)
}

// CatEq tests equality of a categorical attribute.
func CatEq(column, value string) Predicate { return query.CatEq(column, value) }

// CatIn tests membership of a categorical attribute in a value set.
func CatIn(column string, values ...string) Predicate {
	return query.CatIn(column, values...)
}

// QAnd conjoins predicates.
func QAnd(ps ...Predicate) Predicate { return query.And(ps...) }

// QOr disjoins predicates.
func QOr(ps ...Predicate) Predicate { return query.Or(ps...) }

// QNot negates a predicate.
func QNot(p Predicate) Predicate { return query.Not(p) }

// RunQuery executes an aggregate query against a (typically decompressed)
// table under the tolerance vector it was compressed with. The returned
// intervals are guaranteed to contain the answers the original table
// would produce.
func RunQuery(t *Table, tol Tolerances, q Query) (*QueryResult, error) {
	return query.Run(t, table.Tolerances(tol), q)
}

// ParsePredicate parses a filter expression such as
//
//	duration > 200 && (plan == 'saver' || charge <= 50)
//
// against a schema; see the query package for the grammar. An empty
// expression yields a nil predicate (match all).
func ParsePredicate(expr string, schema Schema) (Predicate, error) {
	return query.ParsePredicate(expr, schema)
}
