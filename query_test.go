package spartan

import (
	"math"
	"testing"

	"repro/internal/datagen"
)

// exactAggregate computes the true aggregate on a table directly, the
// reference the query engine's bounds must contain.
func exactAggregate(t *testing.T, tb *Table, q Query) float64 {
	t.Helper()
	col := -1
	if q.Column != "" {
		for i := 0; i < tb.NumCols(); i++ {
			if tb.Attr(i).Name == q.Column {
				col = i
			}
		}
		if col < 0 {
			t.Fatalf("column %q not found", q.Column)
		}
	}
	count, sum := 0, 0.0
	mn, mx := math.Inf(1), math.Inf(-1)
	for r := 0; r < tb.NumRows(); r++ {
		count++
		if col >= 0 {
			v := tb.Float(r, col)
			sum += v
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
	}
	switch q.Agg {
	case Count:
		return float64(count)
	case Sum:
		return sum
	case Avg:
		return sum / float64(count)
	case Min:
		return mn
	case Max:
		return mx
	}
	t.Fatalf("unsupported aggregate %v", q.Agg)
	return 0
}

// TestRunQueryBoundsContainTruth is the paper's §1 guarantee end to end:
// compress with tolerance, decompress, query the reconstruction — the
// returned interval must contain the answer the original table gives.
func TestRunQueryBoundsContainTruth(t *testing.T) {
	tb := datagen.CDR(2500, 7)
	tol := UniformTolerances(tb, 0.02, 0)
	data, _, err := CompressBytes(tb, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{Agg: Count},
		{Agg: Sum, Column: "duration_sec"},
		{Agg: Avg, Column: "duration_sec"},
		{Agg: Min, Column: "charge_cents"},
		{Agg: Max, Column: "charge_cents"},
	} {
		res, err := RunQuery(back, tol, q)
		if err != nil {
			t.Fatalf("%v(%s): %v", q.Agg, q.Column, err)
		}
		if len(res.Groups) != 1 {
			t.Fatalf("%v(%s): %d groups, want 1", q.Agg, q.Column, len(res.Groups))
		}
		g := res.Groups[0]
		truth := exactAggregate(t, tb, q)
		if truth < g.Lo || truth > g.Hi {
			t.Errorf("%v(%s): truth %g outside bounds [%g, %g]",
				q.Agg, q.Column, truth, g.Lo, g.Hi)
		}
		if g.Value < g.Lo || g.Value > g.Hi {
			t.Errorf("%v(%s): point estimate %g outside its own bounds [%g, %g]",
				q.Agg, q.Column, g.Value, g.Lo, g.Hi)
		}
	}
}

// TestRunQueryPredicatesAndGroupBy exercises the combinators and GROUP BY
// through the public aliases on a reconstructed table.
func TestRunQueryPredicatesAndGroupBy(t *testing.T) {
	tb := datagen.CDR(2000, 3)
	tol := UniformTolerances(tb, 0.01, 0)
	data, _, err := CompressBytes(tb, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}

	pred := QAnd(
		NumCmp("duration_sec", Gt, 0),
		QNot(NumCmp("duration_sec", Lt, 0)),
	)
	res, err := RunQuery(back, tol, Query{Agg: Count, Where: pred, GroupBy: "plan"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) < 2 {
		t.Fatalf("GROUP BY plan produced %d groups, want several", len(res.Groups))
	}
	total := 0
	for _, g := range res.Groups {
		if g.Key == "" {
			t.Error("grouped result carries an empty key")
		}
		total += g.Rows + g.UncertainRows
	}
	if total > tb.NumRows() {
		t.Errorf("groups account for %d rows, table has %d", total, tb.NumRows())
	}

	// Parsed predicate must agree with the equivalent combinator query.
	parsed, err := ParsePredicate("duration_sec > 100", back.Schema())
	if err != nil {
		t.Fatal(err)
	}
	fromParse, err := RunQuery(back, tol, Query{Agg: Count, Where: parsed})
	if err != nil {
		t.Fatal(err)
	}
	fromComb, err := RunQuery(back, tol, Query{Agg: Count, Where: NumCmp("duration_sec", Gt, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if fromParse.Groups[0] != fromComb.Groups[0] {
		t.Errorf("parsed predicate result %+v != combinator result %+v",
			fromParse.Groups[0], fromComb.Groups[0])
	}
}

// TestRunQueryErrors checks the error paths reachable through the public
// wrappers.
func TestRunQueryErrors(t *testing.T) {
	tb := datagen.CDR(200, 4)
	if _, err := RunQuery(tb, nil, Query{Agg: Sum, Column: "no_such_column"}); err == nil {
		t.Error("Sum over a missing column must fail")
	}
	if _, err := RunQuery(tb, nil, Query{Agg: Sum, Column: "plan"}); err == nil {
		t.Error("Sum over a categorical column must fail")
	}
	if _, err := ParsePredicate("duration_sec >", tb.Schema()); err == nil {
		t.Error("truncated expression must fail to parse")
	}
	if _, err := ParsePredicate("nope == 'x'", tb.Schema()); err == nil {
		t.Error("unknown column in expression must fail to parse")
	}
}
