package spartan

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/table"
)

// TestCompressionSanityAcrossDatasets asserts cross-cutting invariants on
// all four generators at once: the guarantee holds, compression never
// inflates the evaluation datasets, and every reported statistic is
// internally consistent.
func TestCompressionSanityAcrossDatasets(t *testing.T) {
	datasets := map[string]*Table{
		"census": datagen.Census(3000, 5),
		"corel":  datagen.Corel(3000, 5),
		"forest": datagen.ForestCover(3000, 5),
		"cdr":    datagen.CDR(3000, 5),
	}
	for name, tb := range datasets {
		t.Run(name, func(t *testing.T) {
			tol := UniformTolerances(tb, 0.01, 0)
			data, stats, err := CompressBytes(tb, Options{Tolerances: tol})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Ratio >= 1 {
				t.Errorf("ratio %.3f >= 1", stats.Ratio)
			}
			if stats.CompressedBytes != len(data) {
				t.Errorf("stats bytes %d != stream %d", stats.CompressedBytes, len(data))
			}
			if got := stats.HeaderBytes + stats.ModelBytes + stats.TPrimeBytes; got != len(data) {
				t.Errorf("section sum %d != stream %d", got, len(data))
			}
			if len(stats.Predicted)+len(stats.Materialized) != tb.NumCols() {
				t.Error("attribute partition incomplete")
			}
			back, err := DecompressBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(tb, back, tol); err != nil {
				t.Error(err)
			}
			// Decompression must be deterministic.
			back2, err := DecompressBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if !table.Equal(back, back2) {
				t.Error("decompression not deterministic")
			}
		})
	}
}
