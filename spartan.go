// Package spartan is a model-based semantic compression system for
// relational data tables, reproducing "SPARTAN: A Model-Based Semantic
// Compression System for Massive Data Tables" (Babu, Garofalakis, Rastogi;
// SIGMOD 2001).
//
// Given a table and per-attribute error tolerances, SPARTAN selects a
// subset of attributes to *predict* with compact Classification and
// Regression Tree (CaRT) models instead of storing them, materializes the
// rest, and guarantees that decompressed values never deviate from the
// originals by more than the tolerances: numeric attributes by absolute
// difference, categorical attributes by probability of mismatch. With all
// tolerances zero the compression is lossless.
//
// The pipeline has four components (paper §2.3):
//
//   - DependencyFinder: learns a Bayesian network over the attributes from
//     a small random sample, restricting the CaRT search space;
//   - CaRTSelector: picks the predicted set via Greedy or iterated
//     Weighted-Maximum-Independent-Set search;
//   - CaRTBuilder: grows guaranteed-error trees with integrated pruning;
//   - RowAggregator: fascicle-clusters the materialized projection without
//     disturbing any CaRT path.
//
// Basic usage:
//
//	data, stats, err := spartan.CompressBytes(tbl, spartan.Options{
//	    Tolerances: spartan.UniformTolerances(tbl, 0.01, 0),
//	})
//	...
//	restored, err := spartan.DecompressBytes(data)
package spartan

import (
	"context"
	"io"

	"repro/internal/cart"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/table"
)

// Re-exported table types: the table package is the data substrate users
// build inputs with.
type (
	// Table is an immutable, columnar, typed data table.
	Table = table.Table
	// Schema is an ordered list of attributes.
	Schema = table.Schema
	// Attribute describes one column (name + kind).
	Attribute = table.Attribute
	// Kind distinguishes numeric from categorical attributes.
	Kind = table.Kind
	// Builder constructs a Table row by row.
	Builder = table.Builder
	// Tolerance is a per-attribute error bound.
	Tolerance = table.Tolerance
	// Tolerances is the per-attribute error-tolerance vector ē.
	Tolerances = table.Tolerances
)

// Attribute kinds.
const (
	Numeric     = table.Numeric
	Categorical = table.Categorical
)

// Pipeline types from the core package.
type (
	// Options configures compression; the zero value is lossless with the
	// paper's default knobs.
	Options = core.Options
	// Stats describes one compression run.
	Stats = core.Stats
	// Timings records per-component wall-clock time.
	Timings = core.Timings
	// SelectionStrategy picks the CaRTSelector algorithm.
	SelectionStrategy = core.SelectionStrategy
	// PruneMode selects the CaRT pruning strategy.
	PruneMode = cart.PruneMode
	// Trace collects the pipeline spans of one compression run; pass one
	// via Options.Trace to observe per-component timing (paper §4.2).
	Trace = obs.Trace
	// Span is one timed, annotated pipeline section within a Trace.
	Span = obs.Span
)

// Span names emitted by Compress: a SpanCompress root with one child per
// pipeline component, in PhaseSpans order.
const (
	SpanCompress         = core.SpanCompress
	SpanDependencyFinder = core.SpanDependencyFinder
	SpanCaRTSelection    = core.SpanCaRTSelection
	SpanRowAggregation   = core.SpanRowAggregation
	SpanOutlierScan      = core.SpanOutlierScan
	SpanEncode           = core.SpanEncode
)

// PhaseSpans lists the per-component span names in pipeline order.
var PhaseSpans = core.PhaseSpans

// NewTrace returns an empty pipeline trace for Options.Trace.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// CaRT-selection strategies (paper §3.2, Table 1).
const (
	SelectWMISParents = core.SelectWMISParents
	SelectWMISMarkov  = core.SelectWMISMarkov
	SelectGreedy      = core.SelectGreedy
)

// CaRT pruning modes (paper §3.3).
const (
	// PruneIntegrated interleaves cost-based pruning with tree growth
	// (SPARTAN's default).
	PruneIntegrated = cart.PruneIntegrated
	// PruneAfter grows fully, then prunes (the conventional baseline).
	PruneAfter = cart.PruneAfter
)

// NewBuilder returns a row-by-row table builder for the schema.
func NewBuilder(schema Schema) (*Builder, error) { return table.NewBuilder(schema) }

// ReadCSV parses a table from CSV (schema inferred when nil).
func ReadCSV(r io.Reader, schema Schema) (*Table, error) { return table.ReadCSV(r, schema) }

// WriteCSV writes a table as CSV.
func WriteCSV(w io.Writer, t *Table) error { return table.WriteCSV(w, t) }

// ReadBinary parses a table from the raw fixed-record binary format.
func ReadBinary(r io.Reader) (*Table, error) { return table.ReadBinary(r) }

// WriteBinary writes a table in the raw fixed-record binary format whose
// size defines the compression-ratio denominator.
func WriteBinary(w io.Writer, t *Table) error { return table.WriteBinary(w, t) }

// UniformTolerances builds the paper's standard tolerance vector: every
// numeric attribute tolerates numericFrac of its value range, every
// categorical attribute tolerates mismatch probability catProb.
func UniformTolerances(t *Table, numericFrac, catProb float64) Tolerances {
	return table.UniformTolerances(t, numericFrac, catProb)
}

// UniformTolerancesSchema is UniformTolerances from a schema alone, for
// callers that know the attribute kinds without materializing rows
// (e.g. querying an archive footer before decoding any segment).
func UniformTolerancesSchema(s Schema, numericFrac, catProb float64) Tolerances {
	return table.UniformTolerancesSchema(s, numericFrac, catProb)
}

// Compress writes the semantically compressed form of t to w and reports
// statistics. The input table is not modified.
func Compress(w io.Writer, t *Table, opts Options) (*Stats, error) {
	return core.Compress(w, t, opts)
}

// CompressContext is Compress with cancellation: the pipeline checks ctx
// at every phase boundary and inside long-running phases, so a cancelled
// or expired context aborts the compression promptly with an error
// wrapping ctx.Err().
func CompressContext(ctx context.Context, w io.Writer, t *Table, opts Options) (*Stats, error) {
	return core.CompressContext(ctx, w, t, opts)
}

// Decompress reconstructs a table from a stream produced by Compress.
func Decompress(r io.Reader) (*Table, error) {
	return core.Decompress(r)
}
