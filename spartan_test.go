package spartan

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/table"
)

func TestCompressDecompressCDR(t *testing.T) {
	tb := datagen.CDR(3000, 1)
	tol := UniformTolerances(tb, 0.01, 0)
	data, stats, err := CompressBytes(tb, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tb, back, tol); err != nil {
		t.Fatal(err)
	}
	if stats.Ratio >= 1 {
		t.Errorf("ratio %.3f, expected < 1 on dependent CDR data", stats.Ratio)
	}
	if len(stats.Predicted) == 0 {
		t.Error("no attributes predicted on a table with functional dependencies")
	}
	if stats.CompressedBytes != len(data) {
		t.Errorf("stats bytes %d != stream %d", stats.CompressedBytes, len(data))
	}
}

func TestLosslessMode(t *testing.T) {
	tb := datagen.CDR(1500, 2)
	data, _, err := CompressBytes(tb, Options{}) // nil tolerances = lossless
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("lossless round trip changed the table")
	}
	if err := Verify(tb, back, nil); err != nil {
		t.Error(err)
	}
}

func TestAllSelectionStrategies(t *testing.T) {
	tb := datagen.Census(4000, 3)
	tol := UniformTolerances(tb, 0.01, 0)
	for _, sel := range []SelectionStrategy{SelectWMISParents, SelectWMISMarkov, SelectGreedy} {
		data, stats, err := CompressBytes(tb, Options{Tolerances: tol, Selection: sel})
		if err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		back, err := DecompressBytes(data)
		if err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		if err := Verify(tb, back, tol); err != nil {
			t.Errorf("%v: %v", sel, err)
		}
		if stats.Ratio >= 1 {
			t.Errorf("%v: ratio %.3f >= 1", sel, stats.Ratio)
		}
	}
}

func TestErrorBoundProperty(t *testing.T) {
	f := func(seed int64, tolByte uint8) bool {
		n := 800
		tb := datagen.CDR(n, seed)
		frac := float64(tolByte%10)/100 + 0.001 // 0.1%..9.1%
		tol := UniformTolerances(tb, frac, 0)
		data, _, err := CompressBytes(tb, Options{Tolerances: tol, Seed: seed + 1})
		if err != nil {
			return false
		}
		back, err := DecompressBytes(data)
		if err != nil {
			return false
		}
		return Verify(tb, back, tol) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCategoricalToleranceRespected(t *testing.T) {
	tb := datagen.Census(3000, 5)
	tol := UniformTolerances(tb, 0.02, 0.05) // 5% categorical budget
	data, _, err := CompressBytes(tb, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tb, back, tol); err != nil {
		t.Error(err)
	}
}

func TestRowAggregationAblation(t *testing.T) {
	tb := datagen.Corel(4000, 6)
	tol := UniformTolerances(tb, 0.05, 0)
	withRA, statsRA, err := CompressBytes(tb, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	withoutRA, _, err := CompressBytes(tb, Options{Tolerances: tol, DisableRowAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both must round trip within bounds.
	for _, data := range [][]byte{withRA, withoutRA} {
		back, err := DecompressBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(tb, back, tol); err != nil {
			t.Fatal(err)
		}
	}
	if statsRA.Fascicles == 0 {
		t.Log("row aggregation found no fascicles on Corel (acceptable but unexpected)")
	}
}

func TestDeterministicOutput(t *testing.T) {
	tb := datagen.CDR(1000, 7)
	tol := UniformTolerances(tb, 0.01, 0)
	a, _, err := CompressBytes(tb, Options{Tolerances: tol, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CompressBytes(tb, Options{Tolerances: tol, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different compressed streams")
	}
}

func TestCompressValidation(t *testing.T) {
	if _, err := Compress(&bytes.Buffer{}, nil, Options{}); err == nil {
		t.Error("Compress accepted nil table")
	}
	tb := datagen.CDR(100, 8)
	bad := Tolerances{{Value: -1}}
	if _, _, err := CompressBytes(tb, Options{Tolerances: bad}); err == nil {
		t.Error("Compress accepted wrong-length/negative tolerances")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	tb := datagen.CDR(200, 9)
	mutated := tb.Clone()
	mutated.Col(1).Floats[0] += 1e6
	if err := Verify(tb, mutated, UniformTolerances(tb, 0.01, 0)); err == nil {
		t.Error("Verify missed a gross numeric violation")
	}
	if err := Verify(tb, tb.Clone(), nil); err != nil {
		t.Errorf("Verify rejected identical tables: %v", err)
	}
}

func TestStatsBreakdownConsistent(t *testing.T) {
	tb := datagen.CDR(2000, 10)
	tol := UniformTolerances(tb, 0.01, 0)
	data, stats, err := CompressBytes(tb, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.HeaderBytes + stats.ModelBytes + stats.TPrimeBytes; got != len(data) {
		t.Errorf("breakdown %d != stream %d", got, len(data))
	}
	if len(stats.Predicted)+len(stats.Materialized) != tb.NumCols() {
		t.Error("attribute partition incomplete")
	}
	if stats.Timings.Total() <= 0 {
		t.Error("timings not recorded")
	}
}

func TestSmallSampleStillGuarantees(t *testing.T) {
	// A tiny 2 KB sample gives poor models but the outlier pass must keep
	// the guarantee intact.
	tb := datagen.Census(5000, 11)
	tol := UniformTolerances(tb, 0.01, 0)
	data, _, err := CompressBytes(tb, Options{Tolerances: tol, SampleBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tb, back, tol); err != nil {
		t.Error(err)
	}
}

func TestSingleColumnTable(t *testing.T) {
	b := table.MustBuilder(Schema{{Name: "only", Kind: Numeric}})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		b.MustAppendRow(float64(rng.Intn(10)))
	}
	tb := b.MustBuild()
	data, stats, err := CompressBytes(tb, Options{Tolerances: UniformTolerances(tb, 0.05, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Predicted) != 0 {
		t.Error("single column cannot be predicted")
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tb, back, UniformTolerances(tb, 0.05, 0)); err != nil {
		t.Error(err)
	}
}

func TestConstantColumns(t *testing.T) {
	b := table.MustBuilder(Schema{
		{Name: "const_num", Kind: Numeric},
		{Name: "const_cat", Kind: Categorical},
		{Name: "varying", Kind: Numeric},
	})
	for i := 0; i < 200; i++ {
		b.MustAppendRow(7.0, "same", float64(i%10))
	}
	tb := b.MustBuild()
	data, _, err := CompressBytes(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("constant-column table corrupted")
	}
}

func TestSingleRowTable(t *testing.T) {
	b := table.MustBuilder(Schema{
		{Name: "a", Kind: Numeric},
		{Name: "b", Kind: Categorical},
	})
	b.MustAppendRow(1.5, "x")
	tb := b.MustBuild()
	data, _, err := CompressBytes(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("single-row table corrupted")
	}
}

func TestSelectionStrategyString(t *testing.T) {
	if SelectGreedy.String() != "Greedy" ||
		SelectWMISParents.String() != "WMIS(Parent)" ||
		SelectWMISMarkov.String() != "WMIS(Markov)" {
		t.Error("strategy names do not match Table 1 of the paper")
	}
}
